// Staticanalysis expresses a points-to analysis as a context-free path
// query — the CFL-reachability application the paper's related-work section
// motivates (Reps; Zhang & Su).
//
// We model a tiny program as a graph: variables and heap objects are nodes;
// an allocation x = new O adds  x --alloc_r--> O  (and O --alloc--> x);
// an assignment  x = y  adds    x --assign_r--> y (value flows y → x).
//
// Two variables x, y may alias when they can reach a common allocation
// site, i.e. when the word along x … O … y matches
//
//	Alias     → FlowsTo⁻¹ FlowsTo
//	FlowsTo   → alloc Assigns        (object flows through assignments)
//	Assigns   → assign Assigns | eps
//
// which after inversion becomes the grammar below over the edge labels we
// actually store. This is the classic "may-alias via CFL-reachability"
// formulation restricted to assignments.
//
// Run with:
//
//	go run ./examples/staticanalysis
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)

	// Program:
	//	o1: a = new Obj()
	//	o2: b = new Obj()
	//	c = a
	//	d = c
	//	e = b
	vars := []string{"a", "b", "c", "d", "e", "o1", "o2"}
	id := map[string]int{}
	for i, v := range vars {
		id[v] = i
	}
	g := cfpq.NewGraph(len(vars))
	addAlloc := func(v, obj string) {
		g.AddEdge(id[v], "alloc_r", id[obj])
		g.AddEdge(id[obj], "alloc", id[v])
	}
	addAssign := func(dst, src string) {
		g.AddEdge(id[dst], "assign_r", id[src])
		g.AddEdge(id[src], "assign", id[dst])
	}
	addAlloc("a", "o1")
	addAlloc("b", "o2")
	addAssign("c", "a")
	addAssign("d", "c")
	addAssign("e", "b")

	// PointsTo: variable → allocation site it may point to.
	//	PointsTo → assign_r PointsTo | alloc_r
	// Alias: two variables pointing to a common site.
	//	Alias → PointsTo FlowsTo
	//	FlowsTo → alloc | alloc Flows
	//	Flows → assign | assign Flows
	gram := cfpq.MustParseGrammar(`
		PointsTo -> assign_r PointsTo | alloc_r
		FlowsTo  -> alloc | alloc Flows
		Flows    -> assign | assign Flows
		Alias    -> PointsTo FlowsTo
	`)

	pt, err := eng.Query(ctx, g, gram, "PointsTo")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "PointsTo relation (variable → allocation site):")
	for _, p := range pt {
		fmt.Fprintf(w, "  %s → %s\n", vars[p.I], vars[p.J])
	}

	al, err := eng.Query(ctx, g, gram, "Alias")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nMay-alias pairs:")
	for _, p := range al {
		if p.I < p.J { // symmetric; print each unordered pair once
			fmt.Fprintf(w, "  %s ~ %s\n", vars[p.I], vars[p.J])
		}
	}

	// Sanity: a, c, d share o1; b, e share o2; the groups must not mix.
	fmt.Fprintln(w, "\nExpected: {a,c,d} alias via o1; {b,e} alias via o2; no cross pairs.")
	return nil
}
