package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: the CFL-reachability
// points-to analysis must keep the two allocation groups separate.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"PointsTo relation (variable → allocation site):",
		"a → o1",
		"May-alias pairs:",
		"a ~ c",
		"b ~ e",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The groups must not mix: d points to o1 only, e to o2 only.
	if strings.Contains(out.String(), "d ~ e") {
		t.Error("alias groups mixed: d ~ e reported")
	}
}
