// Dynamic demonstrates the library extensions around the paper's core
// algorithm: regular path queries (RPQ) answered through the same matrix
// machinery, incremental maintenance of an evaluated query when edges are
// added (dynamic CFPQ), and persisting the evaluated index.
//
// The scenario is a package-dependency graph: `imports` edges between
// modules, with a vulnerability introduced mid-session.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"bytes"
	"fmt"

	"cfpq"
)

func main() {
	mods := []string{"app", "api", "auth", "db", "log", "vuln"}
	id := map[string]int{}
	for i, m := range mods {
		id[m] = i
	}
	g := cfpq.NewGraph(len(mods))
	imports := func(from, to string) cfpq.Edge {
		e := cfpq.Edge{From: id[from], Label: "imports", To: id[to]}
		g.AddEdge(e.From, e.Label, e.To)
		return e
	}
	imports("app", "api")
	imports("api", "auth")
	imports("api", "db")
	imports("auth", "log")
	imports("db", "log")

	// 1. RPQ: transitive dependencies are `imports+`.
	pairs, err := cfpq.RPQ(g, "imports+")
	if err != nil {
		panic(err)
	}
	fmt.Println("Transitive dependencies (RPQ `imports+`):")
	for _, p := range pairs {
		fmt.Printf("  %s -> %s\n", mods[p.I], mods[p.J])
	}

	// 2. The same relation as a CFPQ, evaluated once into an Index.
	gram := cfpq.MustParseGrammar("Dep -> imports Dep | imports")
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		panic(err)
	}
	ix, stats := cfpq.Evaluate(g, cnf)
	fmt.Printf("\nCFPQ closure: %d pairs in %d passes\n", ix.Count("Dep"), stats.Iterations)

	// 3. Dynamic update: db starts importing vuln; only the consequences
	// of the new edge are propagated — no full re-evaluation.
	fmt.Println("\nAdding edge db -imports-> vuln ...")
	newEdge := imports("db", "vuln")
	upd := cfpq.Update(ix, newEdge)
	fmt.Printf("Incremental update: %d passes, %d matrix products\n", upd.Iterations, upd.Products)
	fmt.Println("Modules now depending on vuln:")
	for _, p := range ix.Relation("Dep") {
		if mods[p.J] == "vuln" {
			fmt.Printf("  %s\n", mods[p.I])
		}
	}

	// 4. Persist the evaluated index and reload it (e.g. in a later
	// session) without re-running the closure.
	var buf bytes.Buffer
	if err := cfpq.SaveIndex(&buf, ix); err != nil {
		panic(err)
	}
	size := buf.Len()
	reloaded, err := cfpq.LoadIndex(&buf, cnf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nSaved %d bytes; reloaded index answers Has(app→vuln) = %v\n",
		size, reloaded.Has("Dep", id["app"], id["vuln"]))
}
