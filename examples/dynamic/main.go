// Dynamic demonstrates the library extensions around the paper's core
// algorithm through the Engine/Prepared API: regular path queries (RPQ)
// answered through the same matrix machinery, a Prepared handle that keeps
// an evaluated query hot and absorbs edge updates incrementally (dynamic
// CFPQ), streaming iteration over a relation, and persisting the evaluated
// index.
//
// The scenario is a package-dependency graph: `imports` edges between
// modules, with a vulnerability introduced mid-session.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)

	mods := []string{"app", "api", "auth", "db", "log", "vuln"}
	id := map[string]int{}
	for i, m := range mods {
		id[m] = i
	}
	g := cfpq.NewGraph(len(mods))
	imports := func(from, to string) cfpq.Edge {
		e := cfpq.Edge{From: id[from], Label: "imports", To: id[to]}
		g.AddEdge(e.From, e.Label, e.To)
		return e
	}
	imports("app", "api")
	imports("api", "auth")
	imports("api", "db")
	imports("auth", "log")
	imports("db", "log")

	// 1. RPQ: transitive dependencies are `imports+`.
	pairs, err := eng.RPQ(ctx, g, "imports+")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Transitive dependencies (RPQ `imports+`):")
	for _, p := range pairs {
		fmt.Fprintf(w, "  %s -> %s\n", mods[p.I], mods[p.J])
	}

	// 2. The same relation as a CFPQ, prepared once: the closure is
	// evaluated and cached in a handle that answers any number of
	// queries and stays current under edge updates. (Prepare takes
	// ownership of the graph, so hand it a clone.)
	gram := cfpq.MustParseGrammar("Dep -> imports Dep | imports")
	prep, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPrepared closure: %d pairs in %d passes\n",
		prep.Count(ctx, "Dep"), prep.Stats().Build.Iterations)

	// 3. Dynamic update: db starts importing vuln; only the consequences
	// of the new edge are propagated — no full re-evaluation. The edge
	// goes through the handle, which keeps graph and index in sync.
	fmt.Fprintln(w, "\nAdding edge db -imports-> vuln ...")
	info, err := prep.AddEdges(ctx, cfpq.Edge{From: id["db"], Label: "imports", To: id["vuln"]})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Incremental update: %d passes, %d matrix products\n",
		info.Stats.Iterations, info.Stats.Products)
	fmt.Fprintln(w, "Modules now depending on vuln (streamed):")
	for p := range prep.Pairs(ctx, "Dep") {
		if mods[p.J] == "vuln" {
			fmt.Fprintf(w, "  %s\n", mods[p.I])
		}
	}

	// 4. Persist an evaluated index and reload it (e.g. in a later
	// session) without re-running the closure.
	g.AddEdge(id["db"], "imports", id["vuln"])
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}
	ix, _, err := eng.Evaluate(ctx, g, cnf)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := cfpq.SaveIndex(&buf, ix); err != nil {
		return err
	}
	size := buf.Len()
	reloaded, err := eng.LoadIndex(&buf, cnf)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSaved %d bytes; reloaded index answers Has(app→vuln) = %v\n",
		size, reloaded.Has("Dep", id["app"], id["vuln"]))
	return nil
}
