package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: RPQ, Prepared, incremental
// update, streaming and index persistence must all hold together.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Transitive dependencies (RPQ `imports+`):",
		"Prepared closure:",
		"Incremental update:",
		"Modules now depending on vuln (streamed):",
		"reloaded index answers Has(app→vuln) = true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
