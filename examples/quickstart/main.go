// Quickstart replays the paper's worked example (Section 4.3) end to end
// through the public API: the same-generation grammar of Figures 3/4, the
// 3-node graph of Figure 5, the iteration states T₀…T₆ of Figures 6–8, and
// the final context-free relations of Figure 9.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()

	// The grammar G' of Figure 4 — the same-generation query in Chomsky
	// Normal Form, with the paper's auxiliary non-terminal names. (The
	// library normalises arbitrary grammars itself; we feed the paper's
	// CNF so the matrices match the figures symbol for symbol.)
	gram := cfpq.MustParseGrammar(`
		S  -> S1 S5 | S3 S6 | S1 S2 | S3 S4
		S5 -> S S2
		S6 -> S S4
		S1 -> subClassOf_r
		S2 -> subClassOf
		S3 -> type_r
		S4 -> type
	`)
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}

	// The input graph of Figure 5.
	g := cfpq.NewGraph(3)
	g.AddEdge(0, "subClassOf_r", 0)
	g.AddEdge(0, "type_r", 1)
	g.AddEdge(1, "type_r", 2)
	g.AddEdge(2, "subClassOf", 0)
	g.AddEdge(2, "type", 2)

	fmt.Fprintln(w, "Input graph (Figure 5):")
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  %d --%s--> %d\n", e.From, e.Label, e.To)
	}
	fmt.Fprintln(w)

	// One engine, one backend choice. Naive iteration reproduces the
	// paper's T ← T ∪ (T × T) states exactly; the trace callback prints
	// each Tᵢ (Figures 6–8).
	eng := cfpq.NewEngine(cfpq.Dense)
	ix, stats, err := eng.Evaluate(ctx, g, cnf,
		cfpq.WithNaiveIteration(),
		cfpq.WithTrace(func(iteration int, ix *cfpq.Index) {
			fmt.Fprintf(w, "T%d =\n%s\n", iteration, ix.FormatMatrix())
		}),
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fixpoint after %d iterations (paper: T6 = T5).\n\n", stats.Iterations)

	// The context-free relations of Figure 9.
	fmt.Fprintln(w, "Context-free relations:")
	for _, nt := range []string{"S", "S1", "S2", "S3", "S4", "S5", "S6"} {
		fmt.Fprintf(w, "  R_%-3s = %v\n", nt, ix.Relation(nt))
	}
	fmt.Fprintln(w)

	// Section 5: single-path semantics — a concrete witness per pair.
	px, err := eng.SinglePath(ctx, g, cnf)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Single-path witnesses for R_S:")
	for _, lp := range px.Relation("S") {
		path, _ := px.Path("S", lp.I, lp.J)
		labels := make([]string, len(path))
		for i, e := range path {
			labels[i] = e.Label
		}
		fmt.Fprintf(w, "  (%d,%d) length %d: %v\n", lp.I, lp.J, lp.Length, labels)
	}
	return nil
}
