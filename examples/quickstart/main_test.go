package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: it must succeed and
// reproduce the paper's worked-example landmarks.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Input graph (Figure 5):",
		"T0 =",
		"Fixpoint after",
		"R_S   = [{0 0} {0 2} {1 2}]",
		"Single-path witnesses for R_S:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
