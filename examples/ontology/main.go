// Ontology runs the paper's two evaluation queries — same-layer (Query 1,
// Figure 10) and adjacent-layer (Query 2, Figure 11) — on one of the
// synthetic ontology graphs, comparing all four backends through the
// public Engine API and showing single-path witnesses, i.e. the
// navigation-query workload the paper's evaluation section is built on.
//
// Run with:
//
//	go run ./examples/ontology            # default: the foaf-sized graph
//	go run ./examples/ontology -name wine
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cfpq"
	"cfpq/internal/baseline"
	"cfpq/internal/dataset"
)

func main() {
	name := flag.String("name", "foaf", "dataset name (see cmd/graphgen -list)")
	flag.Parse()
	ctx := context.Background()

	d, ok := dataset.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(1)
	}
	g := d.Build()
	fmt.Printf("Dataset %s: %d triples → %v\n\n", d.Name, d.Triples, g.Stats())

	for q := 1; q <= 2; q++ {
		gram := dataset.Query(q)
		cnf := dataset.QueryCNF(q)
		fmt.Printf("Query %d grammar:\n%s\n", q, gram)

		for _, be := range []cfpq.Backend{
			cfpq.DenseParallel(0), cfpq.Sparse, cfpq.SparseParallel(0),
		} {
			start := time.Now()
			ix, stats, err := cfpq.NewEngine(be).Evaluate(ctx, g, cnf)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-16s |R_S| = %-6d (%d passes, %d products, %v)\n",
				be.Name(), ix.Count("S"), stats.Iterations, stats.Products, time.Since(start).Round(time.Microsecond))
		}
		start := time.Now()
		rel := baseline.NewGLL(gram).Relation(g, "S")
		fmt.Printf("  %-16s |R_S| = %-6d (%v)\n\n", "GLL baseline", len(rel), time.Since(start).Round(time.Microsecond))
	}

	// Single-path semantics on Query 2: print a few witness paths.
	eng := cfpq.NewEngine(cfpq.Sparse)
	px, err := eng.SinglePath(ctx, g, dataset.QueryCNF(2))
	if err != nil {
		panic(err)
	}
	rel := px.Relation("S")
	fmt.Printf("Query 2 single-path witnesses (%d pairs, first 5):\n", len(rel))
	for i, lp := range rel {
		if i == 5 {
			break
		}
		path, _ := px.Path("S", lp.I, lp.J)
		labels := make([]string, len(path))
		for k, e := range path {
			labels[k] = e.Label
		}
		fmt.Printf("  (%d,%d) length %d: %v\n", lp.I, lp.J, lp.Length, labels)
	}
}
