// Ontology runs the paper's two evaluation queries — same-layer (Query 1,
// Figure 10) and adjacent-layer (Query 2, Figure 11) — on one of the
// synthetic ontology graphs, comparing all four backends through the
// public Engine API and showing single-path witnesses, i.e. the
// navigation-query workload the paper's evaluation section is built on.
//
// Run with:
//
//	go run ./examples/ontology            # default: the foaf-sized graph
//	go run ./examples/ontology -name wine
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cfpq"
	"cfpq/internal/baseline"
	"cfpq/internal/dataset"
)

func main() {
	name := flag.String("name", "foaf", "dataset name (see cmd/graphgen -list)")
	flag.Parse()
	if err := run(os.Stdout, *name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer, name string) error {
	ctx := context.Background()

	d, ok := dataset.ByName(name)
	if !ok {
		return fmt.Errorf("unknown dataset %q", name)
	}
	g := d.Build()
	fmt.Fprintf(w, "Dataset %s: %d triples → %v\n\n", d.Name, d.Triples, g.Stats())

	for q := 1; q <= 2; q++ {
		gram := dataset.Query(q)
		cnf := dataset.QueryCNF(q)
		fmt.Fprintf(w, "Query %d grammar:\n%s\n", q, gram)

		for _, be := range []cfpq.Backend{
			cfpq.DenseParallel(0), cfpq.Sparse, cfpq.SparseParallel(0),
		} {
			start := time.Now()
			ix, stats, err := cfpq.NewEngine(be).Evaluate(ctx, g, cnf)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-16s |R_S| = %-6d (%d passes, %d products, %v)\n",
				be.Name(), ix.Count("S"), stats.Iterations, stats.Products, time.Since(start).Round(time.Microsecond))
		}
		start := time.Now()
		rel := baseline.NewGLL(gram).Relation(g, "S")
		fmt.Fprintf(w, "  %-16s |R_S| = %-6d (%v)\n\n", "GLL baseline", len(rel), time.Since(start).Round(time.Microsecond))
	}

	// Single-path semantics on Query 2: print a few witness paths.
	eng := cfpq.NewEngine(cfpq.Sparse)
	px, err := eng.SinglePath(ctx, g, dataset.QueryCNF(2))
	if err != nil {
		return err
	}
	rel := px.Relation("S")
	fmt.Fprintf(w, "Query 2 single-path witnesses (%d pairs, first 5):\n", len(rel))
	for i, lp := range rel {
		if i == 5 {
			break
		}
		path, _ := px.Path("S", lp.I, lp.J)
		labels := make([]string, len(path))
		for k, e := range path {
			labels[k] = e.Label
		}
		fmt.Fprintf(w, "  (%d,%d) length %d: %v\n", lp.I, lp.J, lp.Length, labels)
	}
	return nil
}
