package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end on the smallest dataset:
// all backends and the GLL baseline must report, plus witness paths.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "skos"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Dataset skos: 252 triples",
		"Query 1 grammar:",
		"sparse-parallel",
		"GLL baseline",
		"Query 2 single-path witnesses",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "no-such-dataset"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}
