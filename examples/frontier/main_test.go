package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: the source-restricted query
// must stay below saturation, the batch must answer consistently, and the
// incremental update must extend billing's reach through the new edge.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"plan: source-frontier",
		"billing transitively calls (frontier 4 of 8 nodes):",
		"plan: target-frontier",
		"services that transitively call db2:",
		"review batch (4 queries, one index build):",
		"edge can reach db2:        true",
		"auth can reach ledger:     false",
		"after mail -> auth is added, billing reaches:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The update must have propagated: billing reaches auth's cluster via
	// the new mail -> auth edge.
	tail := out.String()[strings.Index(out.String(), "after mail"):]
	for _, svc := range []string{"auth", "tokens", "db1"} {
		if !strings.Contains(tail, svc) {
			t.Errorf("post-update reach missing %q", svc)
		}
	}
}
