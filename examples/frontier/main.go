// Frontier demonstrates the serving-workload APIs: declarative Requests
// evaluated by the planner (Engine.Do), which picks the source- or
// target-frontier strategy for restricted questions instead of the full
// n×n closure — Result.Explain records the choice — and batched
// evaluation (Prepared.QueryBatch), which coalesces many Requests against
// one (graph, grammar) pair into a single cached index build with answers
// fanned out over a worker pool.
//
// The scenario is a security review over a service-dependency graph:
// `calls` edges between services, and the review asks per-service
// questions — exactly the single-source shape a query service handles.
//
// Run with:
//
//	go run ./examples/frontier
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)

	// Two service clusters; only "edge" bridges them. Transitive calls
	// from most services touch a small frontier — the case where the
	// source-restricted closure wins.
	services := []string{"edge", "auth", "tokens", "db1", "billing", "ledger", "db2", "mail"}
	id := map[string]int{}
	for i, s := range services {
		id[s] = i
	}
	g := cfpq.NewGraph(len(services))
	calls := func(from, to string) { g.AddEdge(id[from], "calls", id[to]) }
	calls("edge", "auth")
	calls("edge", "billing")
	calls("auth", "tokens")
	calls("tokens", "db1")
	calls("billing", "ledger")
	calls("ledger", "db2")
	calls("billing", "mail")

	// Reach → calls Reach | calls: transitive dependencies.
	gram := cfpq.MustParseGrammar("Reach -> calls Reach | calls")

	// 1. A single-source question as a declarative Request: the planner
	// picks the source-frontier strategy, so only the rows reachable from
	// billing are ever materialised; Explain records the choice.
	res, err := eng.Do(ctx, cfpq.Request{
		Graph: g, Grammar: gram, Nonterminal: "Reach", Sources: []int{id["billing"]},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plan: %s\n", res.Explain.Strategy)
	fmt.Fprintf(w, "billing transitively calls (frontier %d of %d nodes):\n",
		res.Explain.Frontier, g.Nodes())
	for p := range res.Pairs() {
		fmt.Fprintf(w, "  %s\n", services[p.J])
	}

	// 1b. The dual question — "who can take down db2?" — plans the
	// target-frontier strategy: the same frontier evaluation over the
	// reversed graph and grammar.
	rev, err := eng.Do(ctx, cfpq.Request{
		Graph: g, Grammar: gram, Nonterminal: "Reach", Targets: []int{id["db2"]},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nplan: %s\n", rev.Explain.Strategy)
	fmt.Fprintf(w, "services that transitively call db2:\n")
	for p := range rev.Pairs() {
		fmt.Fprintf(w, "  %s\n", services[p.I])
	}

	// 2. A review batch: one Prepared handle, one closure build, every
	// per-service question answered from the same index state by the
	// shared worker pool. (Prepare takes ownership of the graph.)
	prep, err := eng.Prepare(ctx, g, gram)
	if err != nil {
		return err
	}
	queries := []cfpq.Request{
		{Nonterminal: "Reach", Output: cfpq.OutputCount},
		{Nonterminal: "Reach", Output: cfpq.OutputExists, Sources: []int{id["edge"]}, Targets: []int{id["db2"]}},
		{Nonterminal: "Reach", Output: cfpq.OutputExists, Sources: []int{id["auth"]}, Targets: []int{id["ledger"]}},
		{Nonterminal: "Reach", Sources: []int{id["auth"]}},
	}
	results := prep.QueryBatch(ctx, queries)
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	fmt.Fprintf(w, "\nreview batch (%d queries, one index build):\n", len(queries))
	fmt.Fprintf(w, "  total reachable pairs:     %d\n", results[0].Result.Count)
	fmt.Fprintf(w, "  edge can reach db2:        %v\n", results[1].Result.Exists)
	fmt.Fprintf(w, "  auth can reach ledger:     %v\n", results[2].Result.Exists)
	fmt.Fprintf(w, "  auth's reachable set:     ")
	for p := range results[3].Result.Pairs() {
		fmt.Fprintf(w, " %s", services[p.J])
	}
	fmt.Fprintln(w)

	// 3. The handle keeps answering restricted questions from its cached
	// index — and stays current under edge updates.
	if _, err := prep.AddEdges(ctx, cfpq.Edge{From: id["mail"], Label: "calls", To: id["auth"]}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nafter mail -> auth is added, billing reaches:\n")
	for p := range prep.PairsFrom(ctx, "Reach", []int{id["billing"]}) {
		fmt.Fprintf(w, "  %s\n", services[p.J])
	}
	return nil
}
