package cfpq

import (
	"context"
	"fmt"
	"io"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"cfpq/internal/core"
)

// Prepared is a compiled grammar bound to a graph with a cached,
// incrementally-maintained closure index — the unit a serving layer caches
// per (graph, grammar, backend). It is safe for concurrent use: queries
// run under a read lock and proceed in parallel; AddEdges takes the write
// lock, patches the index with the semi-naive delta closure, and
// transparently grows the matrices when edges enlarge the node set. This
// is the same caching/locking discipline cfpqd's query service uses —
// the service now holds Prepared handles instead of private machinery.
type Prepared struct {
	eng *Engine
	cnf *CNF

	mu      sync.RWMutex
	g       *Graph // owned by the Prepared; mutate only through AddEdges
	ix      *Index
	wal     WAL     // journal AddEdges tees into before mutating; may be nil
	subs    *subHub // live-query fan-out; created on first Subscribe/Close
	build   Stats   // the initial closure
	update  Stats   // accumulated incremental patches
	updates int     // number of AddEdges calls that patched
	dirty   bool    // a cancelled patch left consequences unpropagated
	queries atomic.Int64
}

// WAL is an append-only durability log a Prepared tees its mutations into
// (see AttachWAL). The store package's per-graph Log satisfies it.
type WAL interface {
	// AppendEdges journals edges durably; an error means nothing may be
	// considered persisted.
	AppendEdges(edges []Edge) error
}

// AttachWAL tees every subsequent AddEdges into w, write-ahead: the batch
// of genuinely new edges is journaled (and fsynced, for a durable log)
// before the graph or index is touched, and a journaling error fails the
// call with no in-memory effect. Attach at most one mutating handle per
// log — the log is a single edge stream and replay assumes one interning
// history. A nil w detaches.
func (p *Prepared) AttachWAL(w WAL) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = w
}

// CNF returns the compiled grammar the handle was prepared with.
func (p *Prepared) CNF() *CNF { return p.cnf }

// Backend returns the backend the cached index evaluates with.
func (p *Prepared) Backend() Backend { return p.eng.Backend() }

// Nodes returns the current node count of the bound graph.
func (p *Prepared) Nodes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.g.Nodes()
}

// Do answers a declarative Request from the handle's cached closure index
// — the cached-read strategy, which performs no closure work at all; the
// planner's other strategies evaluate from scratch and belong to
// Engine.Do. The request must not carry its own Graph, Grammar,
// Conjunctive, Expr, Options or EmptyPaths: the handle is bound to one
// compiled CFG and serves exactly its closure relation.
//
// Unlike Engine.Do (which rejects restriction nodes the graph does not
// have — a caller mistake when evaluating from scratch), restriction
// nodes outside the index's node range simply contribute no pairs,
// mirroring the handle's historic read methods under concurrent graph
// growth. Unknown non-terminals are an error.
//
// The returned Result's Pairs/Paths stream a point-in-time snapshot
// materialised under the read lock, so iterating them needs no lock and
// cannot deadlock against a concurrent AddEdges.
func (p *Prepared) Do(ctx context.Context, req Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.checkRequest(req); err != nil {
		return nil, err
	}
	start := time.Now()
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	res, err := p.doLocked(ctx, req)
	if res != nil {
		// A cached read runs no closure, but it still took time (lock wait
		// plus scan); stamp it so warm reads report their real latency.
		res.Stats.Duration = time.Since(start)
	}
	return res, err
}

// checkRequest validates a request against what a cached-index read can
// answer; it needs no lock.
func (p *Prepared) checkRequest(req Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if req.Graph != nil {
		return reqErr("graph", "Prepared.Do evaluates against the bound graph; drop the request's Graph")
	}
	if req.Grammar != nil || req.Conjunctive != nil {
		return reqErr("grammar", "Prepared.Do evaluates under the bound grammar; drop the request's Grammar")
	}
	if req.Expr != "" {
		return reqErr("expr", "RPQ requests compile a fresh grammar; evaluate them with Engine.Do")
	}
	if req.EmptyPaths {
		return reqErr("empty_paths", "the cached index holds the closure relation only; evaluate ε-decorated queries with Engine.Do")
	}
	if len(req.Options) > 0 {
		return reqErr("options", "per-call evaluation options do not apply to cached-index reads")
	}
	return nil
}

// cachedReadExplain is the Explain record of every Prepared answer.
func cachedReadExplain() Explain {
	return Explain{
		Strategy: StrategyCachedRead,
		Reason:   "answered from the prepared handle's cached closure index; no closure work",
	}
}

// doLocked answers one checked request; callers hold p.mu (read side
// suffices: only the index is consulted).
func (p *Prepared) doLocked(ctx context.Context, req Request) (*Result, error) {
	nt := req.Nonterminal
	if _, ok := p.cnf.Index(nt); !ok {
		return nil, fmt.Errorf("cfpq: unknown non-terminal %q", nt)
	}
	res := &Result{Explain: cachedReadExplain()}
	n := p.ix.Nodes()
	switch req.normOutput() {
	case OutputPaths:
		i, j := req.Sources[0], req.Targets[0]
		if i >= n || j >= n {
			return res, nil
		}
		// Enumerate one path past the limit so a clipped answer reports
		// Truncated — the same lookahead the pairs output uses. (Without a
		// Limit the enumerator's own default cap applies; hitting it is
		// not reported, matching Paths' documented contract.)
		opts := AllPathsOptions{MaxLength: req.MaxPathLength, MaxPaths: req.Limit}
		if req.Limit > 0 {
			opts.MaxPaths++
		}
		paths, err := p.ix.AllPathsContext(ctx, p.g, nt, i, j, opts)
		if err != nil {
			return nil, err
		}
		if req.Limit > 0 && len(paths) > req.Limit {
			paths = paths[:req.Limit]
			res.Truncated = true
		}
		res.Count = len(paths)
		res.paths = paths
	case OutputExists:
		if len(req.Sources) == 1 && len(req.Targets) == 1 {
			// The point lookup the serving hot path issues; O(1)-ish.
			i, j := req.Sources[0], req.Targets[0]
			res.Exists = i < n && j < n && p.ix.Has(nt, i, j)
			return res, nil
		}
		res.Exists = p.scanLocked(nt, req.Sources, req.Targets, 1) > 0
	case OutputCount:
		res.Count = p.scanLocked(nt, req.Sources, req.Targets, 0)
	default: // OutputPairs
		// Materialised under the held lock: the streamed pairs are a
		// consistent point-in-time snapshot (batch answers must all read
		// one index state), and iterating the Result needs no lock.
		// The scan looks one pair past the limit so a clipped answer can
		// report Truncated instead of silently passing for a complete one.
		lookahead := req.Limit
		if lookahead > 0 {
			lookahead++
		}
		pairs := p.pairsLocked(nt, req.Sources, req.Targets, lookahead)
		if req.Limit > 0 && len(pairs) > req.Limit {
			pairs = pairs[:req.Limit]
			res.Truncated = true
		}
		res.Count = len(pairs)
		res.pairs = pairs
	}
	return res, nil
}

// restrictionMask turns a restriction into a membership mask over the
// index's node range; nil stays nil (unrestricted) and out-of-range nodes
// are dropped (they can have no pairs).
func restrictionMask(n int, nodes []int) []bool {
	if nodes == nil {
		return nil
	}
	mask := make([]bool, n)
	for _, v := range nodes {
		if v >= 0 && v < n {
			mask[v] = true
		}
	}
	return mask
}

// inMask reports membership under an optional mask; nil means everything.
func inMask(mask []bool, v int) bool {
	return mask == nil || (v < len(mask) && mask[v])
}

// scanLocked counts the entries of R_nt satisfying the restriction,
// stopping early at limit when limit > 0; callers hold p.mu.
func (p *Prepared) scanLocked(nt string, sources, targets []int, limit int) int {
	m := p.ix.Matrix(nt)
	if m == nil {
		return 0
	}
	if sources == nil && targets == nil && limit == 0 {
		return p.ix.Count(nt)
	}
	srcMask := restrictionMask(p.ix.Nodes(), sources)
	tgtMask := restrictionMask(p.ix.Nodes(), targets)
	count := 0
	m.Range(func(i, j int) bool {
		if inMask(srcMask, i) && inMask(tgtMask, j) {
			count++
			if limit > 0 && count >= limit {
				return false
			}
		}
		return true
	})
	return count
}

// pairsLocked materialises the restricted relation in row-major order,
// stopping at limit when limit > 0; callers hold p.mu.
func (p *Prepared) pairsLocked(nt string, sources, targets []int, limit int) []Pair {
	m := p.ix.Matrix(nt)
	if m == nil {
		return nil
	}
	srcMask := restrictionMask(p.ix.Nodes(), sources)
	tgtMask := restrictionMask(p.ix.Nodes(), targets)
	var out []Pair
	m.Range(func(i, j int) bool {
		if !inMask(srcMask, i) || !inMask(tgtMask, j) {
			return true
		}
		out = append(out, Pair{I: i, J: j})
		return limit == 0 || len(out) < limit
	})
	return out
}

// Has reports whether (i, j) ∈ R_nt. Unknown non-terminals,
// out-of-range nodes and a cancelled ctx answer false. Sugar for an
// OutputExists Request.
func (p *Prepared) Has(ctx context.Context, nt string, i, j int) bool {
	res, err := p.Do(ctx, Request{
		Nonterminal: nt, Sources: []int{i}, Targets: []int{j}, Output: OutputExists,
	})
	return err == nil && res.Exists
}

// Count returns |R_nt|. Sugar for an OutputCount Request.
func (p *Prepared) Count(ctx context.Context, nt string) int {
	res, err := p.Do(ctx, Request{Nonterminal: nt, Output: OutputCount})
	if err != nil {
		return 0
	}
	return res.Count
}

// Counts returns |R_A| for every non-terminal A, keyed by name.
func (p *Prepared) Counts() map[string]int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.ix.Counts()
}

// Relation returns R_nt as a sorted pair list. Sugar for an OutputPairs
// Request; Pairs streams the same materialised snapshot.
func (p *Prepared) Relation(ctx context.Context, nt string) []Pair {
	res, err := p.Do(ctx, Request{Nonterminal: nt})
	if err != nil {
		return nil
	}
	return res.AllPairs()
}

// Pairs streams R_nt in row-major order. The sequence is a point-in-time
// snapshot taken under the read lock; iteration itself holds no lock, so
// (unlike earlier versions of this API) methods of this Prepared may be
// called from inside the loop. Sugar for an OutputPairs Request.
func (p *Prepared) Pairs(ctx context.Context, nt string) iter.Seq[Pair] {
	res, err := p.Do(ctx, Request{Nonterminal: nt})
	if err != nil {
		return func(func(Pair) bool) {}
	}
	return res.Pairs()
}

// RelationFrom returns the pairs of R_nt whose first component is one of
// the given source nodes, in row-major order — the cached-index answer to
// the single-/few-source question Engine.QueryFrom evaluates from scratch.
// Out-of-range sources contribute nothing. Sugar for a source-restricted
// OutputPairs Request.
func (p *Prepared) RelationFrom(ctx context.Context, nt string, sources []int) []Pair {
	res, err := p.Do(ctx, Request{Nonterminal: nt, Sources: nonNilNodes(sources)})
	if err != nil {
		return nil
	}
	return res.AllPairs()
}

// CountFrom returns the number of pairs of R_nt whose first component is
// one of the given source nodes. Sugar for a source-restricted
// OutputCount Request.
func (p *Prepared) CountFrom(ctx context.Context, nt string, sources []int) int {
	res, err := p.Do(ctx, Request{
		Nonterminal: nt, Sources: nonNilNodes(sources), Output: OutputCount,
	})
	if err != nil {
		return 0
	}
	return res.Count
}

// PairsFrom streams the pairs of R_nt whose first component is one of the
// given source nodes, in row-major order — a point-in-time snapshot, like
// Pairs. Sugar for a source-restricted OutputPairs Request.
func (p *Prepared) PairsFrom(ctx context.Context, nt string, sources []int) iter.Seq[Pair] {
	res, err := p.Do(ctx, Request{Nonterminal: nt, Sources: nonNilNodes(sources)})
	if err != nil {
		return func(func(Pair) bool) {}
	}
	return res.Pairs()
}

// Paths yields distinct paths witnessing (nt, i, j) in nondecreasing
// length order, bounded by opts. The bounded enumeration runs up front
// (path extraction needs a consistent index), so breaking early saves only
// the consumer's work; keep MaxPaths tight. Sugar for an OutputPaths
// Request.
func (p *Prepared) Paths(ctx context.Context, nt string, i, j int, opts AllPathsOptions) iter.Seq[[]Edge] {
	res, err := p.Do(ctx, Request{
		Nonterminal: nt, Sources: []int{i}, Targets: []int{j}, Output: OutputPaths,
		Limit: opts.MaxPaths, MaxPathLength: opts.MaxLength,
	})
	if err != nil {
		return func(func([]Edge) bool) {}
	}
	return res.Paths()
}

// nonNilNodes normalises a restriction list for the sugar methods: they
// historically treated nil as "no sources" (an empty answer), while a
// Request reads nil as unrestricted, and they silently ignored negative
// ids, which a Request rejects.
func nonNilNodes(nodes []int) []int {
	out := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if v >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// UpdateInfo reports what one AddEdges call did.
type UpdateInfo struct {
	// Added is the number of edges genuinely new to the graph (duplicates
	// of existing edges are skipped).
	Added int `json:"added"`
	// Grown reports that the edges enlarged the node set and the index
	// matrices were resized in place.
	Grown bool `json:"grown,omitempty"`
	// Stats is the incremental closure work of the patch (or of the full
	// rebuild, when one was needed to repair a previously cancelled patch).
	Stats Stats `json:"stats"`
	// Delta is the per-nonterminal relation of pairs this call newly
	// derived — the incremental closure's own frontier union, or, when the
	// call repaired a cancelled patch by rebuilding, the rebuild's
	// new-minus-old difference. A cancelled call reports the pairs that did
	// land before cancellation; the repairing call reports exactly the
	// rest, so the concatenation of Deltas is always the exact history of
	// the relation. Nil only when the call errored before patching.
	Delta *Delta `json:"-"`
}

// AddEdges inserts edges into the bound graph and brings the cached index
// up to date with the incremental delta closure; edges referencing nodes
// beyond the current range transparently grow the graph and the index. The
// context is checked between closure passes. If a patch is cancelled
// mid-way the index stays sound (every answered pair has a witness) but
// may miss consequences of the new edges; the next successful AddEdges
// repairs it with a full rebuild.
//
// With a WAL attached (AttachWAL), the new edges are journaled before any
// in-memory state changes; a journaling failure aborts the call cleanly.
func (p *Prepared) AddEdges(ctx context.Context, edges ...Edge) (UpdateInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	info := UpdateInfo{}
	fresh := make([]Edge, 0, len(edges))
	var seen map[Edge]bool
	for _, ed := range edges {
		if ed.From < p.g.Nodes() && ed.To < p.g.Nodes() && p.g.HasEdge(ed.From, ed.Label, ed.To) {
			continue
		}
		if seen[ed] {
			continue
		}
		if seen == nil {
			seen = map[Edge]bool{}
		}
		seen[ed] = true
		fresh = append(fresh, ed)
	}
	if p.wal != nil && len(fresh) > 0 {
		// Write-ahead: journal before mutating, so an acknowledged batch
		// is always recoverable and a failed one leaves no trace.
		//lint:allow cfpqlint/lockscope write-ahead protocol: the fsynced append MUST happen under the write lock so no reader sees un-journaled state
		if err := p.wal.AppendEdges(fresh); err != nil {
			return info, err
		}
	}
	for _, ed := range fresh {
		p.g.AddEdge(ed.From, ed.Label, ed.To)
	}
	info.Added = len(fresh)
	if p.g.Nodes() > p.ix.Nodes() {
		info.Grown = true
	}
	if p.dirty {
		// Repair: a cancelled patch left unpropagated consequences that a
		// delta seeded only with the new edges would never recover. Grow
		// the stale index first so the rebuild can be diffed against it:
		// subscribers must still see exactly the pairs the repair adds.
		p.ix.Grow(p.g.Nodes())
		old := p.ix
		ix, build, err := p.eng.newCore(&config{}).RunContext(ctx, p.g, p.cnf)
		if err != nil {
			return info, err
		}
		p.ix, p.dirty = ix, false
		p.update.Add(build)
		p.updates++
		info.Stats = build
		info.Delta = core.NewlyDerived(ix, old)
		p.publishLocked(info.Delta)
		return info, nil
	}
	p.ix.Grow(p.g.Nodes())
	st, delta, err := p.eng.newCore(&config{}).UpdateContext(ctx, p.ix, fresh...)
	p.update.Add(st)
	p.updates++
	info.Stats = st
	info.Delta = delta
	// Publish even on cancellation: the partial delta's pairs are in the
	// index (the update is sound, just unfinished), and the repair's
	// new-minus-old delta will exclude them — so subscribers see every
	// pair exactly once across the cancelled patch and its repair.
	p.publishLocked(delta)
	if err != nil {
		p.dirty = true
		return info, err
	}
	return info, nil
}

// WriteIndex serialises the handle's cached index in the CFPQIDX2 format
// under the read lock — a consistent point-in-time image a store can
// persist for warm-starting a later session (LoadIndex +
// PrepareFromIndex). Concurrent queries proceed; updates wait.
func (p *Prepared) WriteIndex(w io.Writer) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, err := p.ix.WriteTo(w)
	return err
}

// PreparedStats is a snapshot of the handle's cached-index statistics.
type PreparedStats struct {
	// Nodes is the index's matrix dimension.
	Nodes int `json:"nodes"`
	// Entries is the total number of set bits across the relation matrices.
	Entries int `json:"entries"`
	// Build is the closure work of the initial full fixpoint.
	Build Stats `json:"build"`
	// Update accumulates the incremental closure work of every AddEdges.
	Update Stats `json:"update"`
	// Updates is the number of AddEdges calls absorbed (including calls
	// whose edges were all duplicates and needed no closure work).
	Updates int `json:"updates"`
	// Queries counts queries answered from the cached index.
	Queries int64 `json:"queries"`
}

// Stats returns a snapshot of the handle's statistics.
func (p *Prepared) Stats() PreparedStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	entries := 0
	for _, c := range p.ix.Counts() {
		entries += c
	}
	return PreparedStats{
		Nodes:   p.ix.Nodes(),
		Entries: entries,
		Build:   p.build,
		Update:  p.update,
		Updates: p.updates,
		Queries: p.queries.Load(),
	}
}
