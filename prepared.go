package cfpq

import (
	"context"
	"io"
	"iter"
	"sync"
	"sync/atomic"
)

// Prepared is a compiled grammar bound to a graph with a cached,
// incrementally-maintained closure index — the unit a serving layer caches
// per (graph, grammar, backend). It is safe for concurrent use: queries
// run under a read lock and proceed in parallel; AddEdges takes the write
// lock, patches the index with the semi-naive delta closure, and
// transparently grows the matrices when edges enlarge the node set. This
// is the same caching/locking discipline cfpqd's query service uses —
// the service now holds Prepared handles instead of private machinery.
type Prepared struct {
	eng *Engine
	cnf *CNF

	mu      sync.RWMutex
	g       *Graph // owned by the Prepared; mutate only through AddEdges
	ix      *Index
	wal     WAL   // journal AddEdges tees into before mutating; may be nil
	build   Stats // the initial closure
	update  Stats // accumulated incremental patches
	updates int   // number of AddEdges calls that patched
	dirty   bool  // a cancelled patch left consequences unpropagated
	queries atomic.Int64
}

// WAL is an append-only durability log a Prepared tees its mutations into
// (see AttachWAL). The store package's per-graph Log satisfies it.
type WAL interface {
	// AppendEdges journals edges durably; an error means nothing may be
	// considered persisted.
	AppendEdges(edges []Edge) error
}

// AttachWAL tees every subsequent AddEdges into w, write-ahead: the batch
// of genuinely new edges is journaled (and fsynced, for a durable log)
// before the graph or index is touched, and a journaling error fails the
// call with no in-memory effect. Attach at most one mutating handle per
// log — the log is a single edge stream and replay assumes one interning
// history. A nil w detaches.
func (p *Prepared) AttachWAL(w WAL) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wal = w
}

// CNF returns the compiled grammar the handle was prepared with.
func (p *Prepared) CNF() *CNF { return p.cnf }

// Backend returns the backend the cached index evaluates with.
func (p *Prepared) Backend() Backend { return p.eng.Backend() }

// Nodes returns the current node count of the bound graph.
func (p *Prepared) Nodes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.g.Nodes()
}

// Has reports whether (i, j) ∈ R_nt. Unknown non-terminals and
// out-of-range nodes answer false.
func (p *Prepared) Has(nt string, i, j int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	if i < 0 || j < 0 || i >= p.ix.Nodes() || j >= p.ix.Nodes() {
		return false
	}
	return p.ix.Has(nt, i, j)
}

// Count returns |R_nt|.
func (p *Prepared) Count(nt string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.ix.Count(nt)
}

// Counts returns |R_A| for every non-terminal A, keyed by name.
func (p *Prepared) Counts() map[string]int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.ix.Counts()
}

// Relation returns R_nt as a sorted pair list, materialised under the read
// lock. For large relations prefer Pairs, which streams.
func (p *Prepared) Relation(nt string) []Pair {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.ix.Relation(nt)
}

// Pairs streams R_nt in row-major order without materialising it. The read
// lock is held for the whole iteration — break early to release it sooner,
// and do not call ANY method of this Prepared from inside the loop: an
// AddEdges would deadlock outright, and even a nested query (Has, Count)
// deadlocks as soon as a writer is queued between the two lock
// acquisitions (sync.RWMutex blocks nested readers behind waiting
// writers). Collect first with Relation if per-pair queries are needed.
func (p *Prepared) Pairs(nt string) iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		p.mu.RLock()
		defer p.mu.RUnlock()
		p.queries.Add(1)
		m := p.ix.Matrix(nt)
		if m == nil {
			return
		}
		m.Range(func(i, j int) bool { return yield(Pair{I: i, J: j}) })
	}
}

// sourceSet turns a source list into a membership mask over the index's
// node range; sources out of range are ignored (they can have no pairs).
func sourceSet(n int, sources []int) []bool {
	mask := make([]bool, n)
	for _, s := range sources {
		if s >= 0 && s < n {
			mask[s] = true
		}
	}
	return mask
}

// RelationFrom returns the pairs of R_nt whose first component is one of
// the given source nodes, in row-major order — the cached-index answer to
// the single-/few-source question Engine.QueryFrom evaluates from scratch.
// Out-of-range sources contribute nothing.
func (p *Prepared) RelationFrom(nt string, sources []int) []Pair {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.relationFromLocked(nt, sources)
}

func (p *Prepared) relationFromLocked(nt string, sources []int) []Pair {
	m := p.ix.Matrix(nt)
	if m == nil {
		return nil
	}
	mask := sourceSet(p.ix.Nodes(), sources)
	var out []Pair
	m.Range(func(i, j int) bool {
		if mask[i] {
			out = append(out, Pair{I: i, J: j})
		}
		return true
	})
	return out
}

// CountFrom returns the number of pairs of R_nt whose first component is
// one of the given source nodes.
func (p *Prepared) CountFrom(nt string, sources []int) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(1)
	return p.countFromLocked(nt, sources)
}

func (p *Prepared) countFromLocked(nt string, sources []int) int {
	m := p.ix.Matrix(nt)
	if m == nil {
		return 0
	}
	mask := sourceSet(p.ix.Nodes(), sources)
	count := 0
	m.Range(func(i, j int) bool {
		if mask[i] {
			count++
		}
		return true
	})
	return count
}

// PairsFrom streams the pairs of R_nt whose first component is one of the
// given source nodes, in row-major order, without materialising the
// relation. The same locking caveats as Pairs apply: the read lock is held
// for the whole iteration and no method of this Prepared may be called
// from inside the loop.
func (p *Prepared) PairsFrom(nt string, sources []int) iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		p.mu.RLock()
		defer p.mu.RUnlock()
		p.queries.Add(1)
		m := p.ix.Matrix(nt)
		if m == nil {
			return
		}
		mask := sourceSet(p.ix.Nodes(), sources)
		m.Range(func(i, j int) bool {
			if !mask[i] {
				return true
			}
			return yield(Pair{I: i, J: j})
		})
	}
}

// Paths yields distinct paths witnessing (nt, i, j) in nondecreasing
// length order, bounded by opts. The bounded enumeration runs up front
// (path extraction needs a consistent index), so breaking early saves only
// the consumer's work; keep MaxPaths tight. Like Pairs, the read lock is
// held for the whole iteration and calling any method of this Prepared
// from inside the loop can deadlock.
func (p *Prepared) Paths(nt string, i, j int, opts AllPathsOptions) iter.Seq[[]Edge] {
	return func(yield func([]Edge) bool) {
		p.mu.RLock()
		defer p.mu.RUnlock()
		p.queries.Add(1)
		for _, path := range p.ix.AllPaths(p.g, nt, i, j, opts) {
			if !yield(path) {
				return
			}
		}
	}
}

// UpdateInfo reports what one AddEdges call did.
type UpdateInfo struct {
	// Added is the number of edges genuinely new to the graph (duplicates
	// of existing edges are skipped).
	Added int `json:"added"`
	// Grown reports that the edges enlarged the node set and the index
	// matrices were resized in place.
	Grown bool `json:"grown,omitempty"`
	// Stats is the incremental closure work of the patch (or of the full
	// rebuild, when one was needed to repair a previously cancelled patch).
	Stats Stats `json:"stats"`
}

// AddEdges inserts edges into the bound graph and brings the cached index
// up to date with the incremental delta closure; edges referencing nodes
// beyond the current range transparently grow the graph and the index. The
// context is checked between closure passes. If a patch is cancelled
// mid-way the index stays sound (every answered pair has a witness) but
// may miss consequences of the new edges; the next successful AddEdges
// repairs it with a full rebuild.
//
// With a WAL attached (AttachWAL), the new edges are journaled before any
// in-memory state changes; a journaling failure aborts the call cleanly.
func (p *Prepared) AddEdges(ctx context.Context, edges ...Edge) (UpdateInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	info := UpdateInfo{}
	fresh := make([]Edge, 0, len(edges))
	var seen map[Edge]bool
	for _, ed := range edges {
		if ed.From < p.g.Nodes() && ed.To < p.g.Nodes() && p.g.HasEdge(ed.From, ed.Label, ed.To) {
			continue
		}
		if seen[ed] {
			continue
		}
		if seen == nil {
			seen = map[Edge]bool{}
		}
		seen[ed] = true
		fresh = append(fresh, ed)
	}
	if p.wal != nil && len(fresh) > 0 {
		// Write-ahead: journal before mutating, so an acknowledged batch
		// is always recoverable and a failed one leaves no trace.
		if err := p.wal.AppendEdges(fresh); err != nil {
			return info, err
		}
	}
	for _, ed := range fresh {
		p.g.AddEdge(ed.From, ed.Label, ed.To)
	}
	info.Added = len(fresh)
	if p.g.Nodes() > p.ix.Nodes() {
		info.Grown = true
	}
	if p.dirty {
		// Repair: a cancelled patch left unpropagated consequences that a
		// delta seeded only with the new edges would never recover.
		ix, build, err := p.eng.newCore(&config{}).RunContext(ctx, p.g, p.cnf)
		if err != nil {
			return info, err
		}
		p.ix, p.dirty = ix, false
		p.update.Add(build)
		p.updates++
		info.Stats = build
		return info, nil
	}
	p.ix.Grow(p.g.Nodes())
	st, err := p.eng.newCore(&config{}).UpdateContext(ctx, p.ix, fresh...)
	p.update.Add(st)
	p.updates++
	info.Stats = st
	if err != nil {
		p.dirty = true
		return info, err
	}
	return info, nil
}

// WriteIndex serialises the handle's cached index in the CFPQIDX2 format
// under the read lock — a consistent point-in-time image a store can
// persist for warm-starting a later session (LoadIndex +
// PrepareFromIndex). Concurrent queries proceed; updates wait.
func (p *Prepared) WriteIndex(w io.Writer) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, err := p.ix.WriteTo(w)
	return err
}

// PreparedStats is a snapshot of the handle's cached-index statistics.
type PreparedStats struct {
	// Nodes is the index's matrix dimension.
	Nodes int `json:"nodes"`
	// Entries is the total number of set bits across the relation matrices.
	Entries int `json:"entries"`
	// Build is the closure work of the initial full fixpoint.
	Build Stats `json:"build"`
	// Update accumulates the incremental closure work of every AddEdges.
	Update Stats `json:"update"`
	// Updates is the number of AddEdges calls absorbed (including calls
	// whose edges were all duplicates and needed no closure work).
	Updates int `json:"updates"`
	// Queries counts queries answered from the cached index.
	Queries int64 `json:"queries"`
}

// Stats returns a snapshot of the handle's statistics.
func (p *Prepared) Stats() PreparedStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	entries := 0
	for _, c := range p.ix.Counts() {
		entries += c
	}
	return PreparedStats{
		Nodes:   p.ix.Nodes(),
		Entries: entries,
		Build:   p.build,
		Update:  p.update,
		Updates: p.updates,
		Queries: p.queries.Load(),
	}
}
