package cfpq

import (
	"context"
	"errors"
	"testing"
)

// TestPreparedSugarCancellation pins the contract the ctx-first sugar
// signatures promise: a cancelled context yields the documented zero
// answers without touching the index, and Do reports the cancellation as
// a typed error.
func TestPreparedSugarCancellation(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	p := mustPrepare(t, NewEngine(Sparse), g, "S -> a b")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := p.Do(ctx, Request{Nonterminal: "S"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do err = %v, want context.Canceled", err)
	}
	if p.Has(ctx, "S", 0, 2) {
		t.Error("Has answered true under a cancelled ctx")
	}
	if n := p.Count(ctx, "S"); n != 0 {
		t.Errorf("Count = %d under a cancelled ctx, want 0", n)
	}
	if pairs := p.Relation(ctx, "S"); pairs != nil {
		t.Errorf("Relation = %v under a cancelled ctx, want nil", pairs)
	}
	if pairs := p.RelationFrom(ctx, "S", []int{0}); pairs != nil {
		t.Errorf("RelationFrom = %v under a cancelled ctx, want nil", pairs)
	}
	if n := p.CountFrom(ctx, "S", []int{0}); n != 0 {
		t.Errorf("CountFrom = %d under a cancelled ctx, want 0", n)
	}
	for range p.Pairs(ctx, "S") {
		t.Error("Pairs streamed a pair under a cancelled ctx")
	}
	for range p.PairsFrom(ctx, "S", []int{0}) {
		t.Error("PairsFrom streamed a pair under a cancelled ctx")
	}
	for range p.Paths(ctx, "S", 0, 2, AllPathsOptions{}) {
		t.Error("Paths streamed a path under a cancelled ctx")
	}

	// A live ctx still answers: cancellation is the only thing the new
	// parameter changes.
	live := context.Background()
	if !p.Has(live, "S", 0, 2) {
		t.Error("Has(live) = false, want true")
	}
	if n := p.Count(live, "S"); n != 1 {
		t.Errorf("Count(live) = %d, want 1", n)
	}
}

// TestExtensionWrapperCancellation pins the same contract on the
// deprecated one-shot wrappers, which now thread the caller's ctx into
// the fresh engine they run.
func TestExtensionWrapperCancellation(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := RPQ(ctx, g, "a b"); !errors.Is(err, context.Canceled) {
		t.Errorf("RPQ err = %v, want context.Canceled", err)
	}
	cg, err := ParseConjunctive("S -> a b & a b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryConjunctive(ctx, g, cg, "S"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryConjunctive err = %v, want context.Canceled", err)
	}
	cnf, _ := ToCNF(MustParseGrammar("S -> a b"))
	if px := ShortestPath(ctx, g, cnf); px != nil {
		t.Error("ShortestPath returned an index under a cancelled ctx, want nil")
	}
	ix, _ := Evaluate(g, cnf)
	if stats := Update(ctx, ix, Edge{From: 2, Label: "a", To: 0}); stats.Iterations != 0 {
		t.Errorf("Update ran %d iterations under a cancelled ctx, want 0", stats.Iterations)
	}
}
