// Package cfpq is a context-free path querying (CFPQ) library: it evaluates
// queries over edge-labelled directed graphs where the set of admissible
// paths is given by a context-free grammar over the edge labels, using the
// matrix-multiplication algorithm of Azimov & Grigorev ("Context-Free Path
// Querying by Matrix Multiplication").
//
// # Model
//
// A graph D = (V, E) has directed edges labelled from a finite alphabet. A
// context-free grammar G assigns a language L(G_A) to each non-terminal A.
// Under the relational query semantics, the answer to a query is the
// relation
//
//	R_A = { (m, n) | there is a path m π n with l(π) ∈ L(G_A) }.
//
// The single-path semantics additionally returns one witness path per pair;
// the all-path semantics enumerates all of them (infinitely many on cyclic
// graphs, so enumeration is bounded).
//
// # Engine: the one query surface
//
// All evaluation goes through an Engine, constructed once with a Backend —
// one of the paper's four matrix implementations — and carrying every query
// method. Each method takes a context.Context, checked between closure
// passes, so long evaluations honour cancellation and deadlines.
//
//	eng := cfpq.NewEngine(cfpq.Sparse) // or Dense, SparseParallel(n), DenseParallel(n)
//	g := cfpq.NewGraph(3)
//	g.AddEdge(0, "a", 1)
//	g.AddEdge(1, "b", 2)
//	gram, _ := cfpq.ParseGrammar("S -> a S b | a b")
//	pairs, _ := eng.Query(context.Background(), g, gram, "S")
//	// pairs == [{0 2}]
//
// The algorithm reduces query evaluation to a Boolean-matrix transitive
// closure: one |V|×|V| Boolean matrix per non-terminal, with one matrix
// multiplication per grammar production per fixpoint pass. Beyond Query,
// the engine evaluates full closures (Evaluate), witness paths
// (SinglePath, ShortestPath, AllPaths), regular path queries by reduction
// (RPQ), conjunctive grammars (QueryConjunctive), incremental maintenance
// (Update) and index persistence (LoadIndex with SaveIndex).
//
// # Source-restricted queries
//
// The dominant serving question is single-source — "what can these nodes
// reach via S?" — and QueryFrom answers it without paying for the
// all-pairs closure: only the matrix rows of the reachable frontier (the
// sources plus every node heading a derivation fragment they reach) are
// maintained, with a transparent fallback to the full closure when the
// frontier saturates. The result is exactly Query filtered to pairs
// leaving the sources; QueryFromStats additionally reports the frontier
// size and closure work:
//
//	pairs, _ := eng.QueryFrom(ctx, g, gram, "S", []int{v})
//
// # Batched queries
//
// QueryBatch coalesces many queries sharing one (graph, grammar) pair
// into a single index build; answers fan out over a worker pool, and all
// of them read the same index state, so a racing update is visible to the
// whole batch or none of it. Engine.QueryBatch is the one-shot form;
// Prepared.QueryBatch answers from the cached index:
//
//	results := p.QueryBatch(ctx, []cfpq.BatchQuery{
//		{Op: cfpq.BatchCount, Nonterminal: "S"},
//		{Op: cfpq.BatchRelationFrom, Nonterminal: "S", Sources: []int{v}},
//	})
//
// Per-query failures land in BatchResult.Err without failing the batch.
//
// # Prepared: cached, incrementally-maintained queries
//
// For repeated queries against one (graph, grammar) pair, Prepare binds
// the compiled grammar to the graph and caches the evaluated closure in a
// Prepared handle. The handle answers any number of concurrent queries
// under a read lock, exposes iter.Seq iterators (Pairs streams the
// relation without materialising it; Paths yields a bounded path
// enumeration), and absorbs edge updates with the incremental delta
// closure instead of re-evaluating — transparently resizing its matrices
// when edges grow the node set:
//
//	p, _ := eng.Prepare(ctx, g, gram)
//	p.Has("S", 0, 2)
//	for pair := range p.Pairs("S") { ... }
//	for pair := range p.PairsFrom("S", []int{0, 1}) { ... } // source-filtered
//	p.AddEdges(ctx, cfpq.Edge{From: 2, Label: "a", To: 7}) // patched, not rebuilt
//
// The free functions (Query, Evaluate, SinglePath, RPQ, Update, …) predate
// Engine and remain as deprecated wrappers over a default sparse engine.
//
// # Serving queries
//
// cmd/cfpqd serves CFPQs over HTTP: it registers named graphs (N-Triples
// or edge-list documents) and grammars, and caches one Prepared handle per
// (graph, grammar, backend) combination — the HTTP layer is registry and
// naming only; caching, locking and incremental updates are the public
// Prepared machinery. A typical session:
//
//	cfpqd -addr :8080 &
//	curl -X PUT --data-binary @wine.nt 'localhost:8080/v1/graphs/wine?format=ntriples'
//	curl -X PUT --data-binary 'S -> subClassOf_r S subClassOf | subClassOf_r subClassOf' \
//	     localhost:8080/v1/grammars/samegen
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=count'
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=relation&sources=n1'
//	curl -X POST -d '{"graph":"wine","grammar":"samegen","queries":[{"op":"count","nonterminal":"S"}]}' \
//	     localhost:8080/v1/query/batch
//	curl -X POST -d '{"edges":[{"from":"a","label":"subClassOf","to":"b"}]}' \
//	     localhost:8080/v1/graphs/wine/edges
//	curl localhost:8080/v1/stats   # build vs incremental-update products
//
// The service itself lives in internal/server and can be embedded
// in-process; cmd/cfpqd is a thin HTTP shell around it.
//
// # Durability and warm start
//
// `cfpqd -data-dir` persists everything the cost model says is worth
// keeping — above all the evaluated closure indexes, the expensive
// artifact of this paper's algorithm. The on-disk store (internal/store)
// holds per-graph snapshots, grammar texts, index files stamped with the
// edge-stream position they cover, and an append-only WAL of edge
// additions with CRC-framed, fsynced records. Mutations are write-ahead:
// the WAL record is durable before the in-memory graph or any cached
// index changes. On restart the service loads snapshots, replays WALs
// (truncating a torn tail to the last good record) and restores every
// saved index as a live Prepared handle — indexes behind the recovered
// stream are patched forward with the incremental delta closure, so no
// closure re-runs from scratch (see BENCH_warmstart.json for the cold
// versus warm gap).
//
// Library users compose the same pieces directly:
//
//	p.WriteIndex(w)                         // persist a handle's index (CFPQIDX2)
//	ix, _ := eng.LoadIndex(r, cnf)          // reload it (backend recorded in the header)
//	p, _ := eng.PrepareFromIndex(g, cnf, ix) // serve it — Build stats stay zero
//	p.AttachWAL(log)                        // tee AddEdges into a durable log, write-ahead
//
// Subpackages under internal/ implement the machinery: grammars and CNF
// (internal/grammar), graphs, N-Triples and edge lists (internal/graph),
// Boolean matrix kernels (internal/matrix), the closure engine and path
// semantics (internal/core), the concurrent query service
// (internal/server), the durable store — WAL, snapshots, compaction
// (internal/store), the Hellings and GLL baselines (internal/baseline),
// the paper's evaluation datasets (internal/dataset) and the table harness
// (internal/bench) — all of which evaluate through the public Engine.
package cfpq
