// Package cfpq is a context-free path querying (CFPQ) library: it evaluates
// queries over edge-labelled directed graphs where the set of admissible
// paths is given by a context-free grammar over the edge labels, using the
// matrix-multiplication algorithm of Azimov & Grigorev ("Context-Free Path
// Querying by Matrix Multiplication").
//
// # Model
//
// A graph D = (V, E) has directed edges labelled from a finite alphabet. A
// context-free grammar G assigns a language L(G_A) to each non-terminal A.
// Under the relational query semantics, the answer to a query is the
// relation
//
//	R_A = { (m, n) | there is a path m π n with l(π) ∈ L(G_A) }.
//
// The single-path semantics additionally returns one witness path per pair;
// the all-path semantics enumerates all of them (infinitely many on cyclic
// graphs, so enumeration is bounded).
//
// # Request → planner → Result: the one query surface
//
// Every query is a declarative Request — a path language (a CFG
// non-terminal, an RPQ expression, or a conjunctive grammar), an optional
// restriction (Sources, Targets, or both — a single pair is one of each),
// and an Output (exists, count, pairs, or paths with limits) — evaluated
// by Engine.Do. A planner picks the cheapest strategy for the restriction
// instead of the caller hard-wiring one:
//
//   - full: the all-pairs closure (unrestricted queries, path
//     enumeration, conjunctive grammars);
//   - source-frontier: only the matrix rows reachable from the sources,
//     with a transparent fallback to the full closure on saturation;
//   - target-frontier: the source frontier of the reversed graph under
//     the reversed grammar — the CFPQ duality (i,j) ∈ R(G,D) ⟺
//     (j,i) ∈ R(rev G, rev D) — answering "what reaches these nodes?";
//   - cached-read: a Prepared handle's index, no closure work at all.
//
// The Result streams pairs/paths as iter.Seq, carries the closure Stats,
// and records the chosen plan in Explain:
//
//	eng := cfpq.NewEngine(cfpq.Sparse) // or Dense, SparseParallel(n), DenseParallel(n)
//	g := cfpq.NewGraph(3)
//	g.AddEdge(0, "a", 1)
//	g.AddEdge(1, "b", 2)
//	gram, _ := cfpq.ParseGrammar("S -> a S b | a b")
//	res, _ := eng.Do(ctx, cfpq.Request{
//		Graph: g, Grammar: gram, Nonterminal: "S", Targets: []int{2},
//	})
//	res.Explain.Strategy // cfpq.StrategyTargetFrontier
//	for pair := range res.Pairs() { ... } // [{0 2}]
//
// The algorithm reduces query evaluation to a Boolean-matrix transitive
// closure: one |V|×|V| Boolean matrix per non-terminal, with one matrix
// multiplication per grammar production per fixpoint pass. The familiar
// call shapes survive as one-line sugar over Do — Query (unrestricted
// pairs), QueryFrom/QueryFromStats (source-restricted), QueryTo
// (target-restricted), RPQ, QueryConjunctive — alongside the index-level
// APIs: Evaluate (the full Index), witness paths (SinglePath,
// ShortestPath, AllPaths), incremental maintenance (Update) and index
// persistence (LoadIndex with SaveIndex).
//
// # Batched requests
//
// QueryBatch evaluates []Request against one (graph, grammar) pair from a
// single index build; answers fan out over a worker pool, and all of them
// read the same index state, so a racing update is visible to the whole
// batch or none of it. Engine.QueryBatch is the one-shot form;
// Prepared.QueryBatch answers from the cached index:
//
//	results := p.QueryBatch(ctx, []cfpq.Request{
//		{Nonterminal: "S", Output: cfpq.OutputCount},
//		{Nonterminal: "S", Sources: []int{v}},
//	})
//
// Per-request failures land in BatchResult.Err without failing the batch.
//
// # Prepared: cached, incrementally-maintained queries
//
// For repeated requests against one (graph, grammar) pair, Prepare binds
// the compiled grammar to the graph and caches the evaluated closure in a
// Prepared handle; Prepared.Do answers any number of concurrent requests
// from it (the cached-read strategy) under a read lock, and AddEdges
// absorbs edge updates with the incremental delta closure instead of
// re-evaluating — transparently resizing its matrices when edges grow the
// node set:
//
//	p, _ := eng.Prepare(ctx, g, gram)
//	res, _ := p.Do(ctx, cfpq.Request{Nonterminal: "S", Sources: []int{0, 1}})
//	p.Has("S", 0, 2)                       // sugar over Do, like the other readers
//	for pair := range p.Pairs("S") { ... } // iter.Seq snapshot
//	p.AddEdges(ctx, cfpq.Edge{From: 2, Label: "a", To: 7}) // patched, not rebuilt
//
// # Live queries
//
// A standing Request can be subscribed instead of polled:
// Prepared.Subscribe registers it and returns a Subscription delivering
// one PairBatch per AddEdges that derives new matching pairs — computed
// from the incremental closure's own delta matrices (what UpdateInfo.Delta
// exposes), never by diffing full results:
//
//	sub, _ := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S", Targets: tgts})
//	for batch := range sub.Batches() { ... } // batch.Pairs: just-derived pairs
//
// Deliveries start at the first update after registration, so to seed
// state without a gap, Subscribe first, then run the same Request through
// Do and union batches on top (an update racing the Do may appear in both
// — a harmless duplicate under set semantics, never a hole). Slow
// consumers never block AddEdges: each subscription
// buffers a bounded number of batches, and one that falls behind has
// batches dropped with the gap reported in-band (PairBatch.Resync) —
// drop-with-resync, not backpressure. After a cancelled patch, the
// repairing rebuild's new-minus-old difference is pushed, so across a
// cancellation and its repair every pair arrives exactly once.
// SubscribeFrom resumes after a known sequence number (the Last-Event-ID
// contract of cfpqd's POST /v1/subscribe SSE route, which followers serve
// too — fed by the replicated-apply path); Prepared.Close ends every
// subscription so consumers learn their handle is gone.
//
// # Old → new call shapes
//
// Pre-planner methods map onto Requests one for one (all remain and are
// sugar over Do):
//
//	Engine.Query(g, gram, "S")            = Request{Graph: g, Grammar: gram, Nonterminal: "S"}
//	Engine.QueryFrom(..., srcs)           = Request{..., Sources: srcs}
//	Engine.QueryTo(..., tgts)             = Request{..., Targets: tgts}
//	Engine.RPQ(g, expr)                   = Request{Graph: g, Expr: expr}
//	Engine.QueryConjunctive(g, cg, "S")   = Request{Graph: g, Conjunctive: cg, Nonterminal: "S"}
//	Prepared.Has("S", i, j)               = Request{Nonterminal: "S", Sources: []int{i}, Targets: []int{j}, Output: OutputExists}
//	Prepared.Count("S")                   = Request{Nonterminal: "S", Output: OutputCount}
//	Prepared.Relation/Pairs("S")          = Request{Nonterminal: "S"}
//	Prepared.RelationFrom("S", srcs)      = Request{Nonterminal: "S", Sources: srcs}
//	Prepared.Paths("S", i, j, opts)       = Request{Nonterminal: "S", Sources: []int{i}, Targets: []int{j}, Output: OutputPaths, Limit: opts.MaxPaths, MaxPathLength: opts.MaxLength}
//
// The free functions (Query, Evaluate, SinglePath, RPQ, Update, …) predate
// Engine and remain as deprecated wrappers over a default sparse engine.
//
// # Observability
//
// Every evaluation can narrate itself, in the style of
// httptrace.ClientTrace: WithTracer installs a Trace whose Pass hook
// fires one PassEvent per closure pass — phase, pass index, Boolean
// products, each non-terminal's relation size before/after (the deltas
// telescope to exactly the pairs the evaluation derived), frontier
// saturation, estimated matrix bytes and wall time. WithTraceContext
// attaches a Trace to one call instead of the whole engine; setting
// Request.Trace collects the events onto Result.Explain.Passes. A
// disabled trace costs the closure loop one nil test per pass and no
// allocations. Result.Stats reports Duration and PeakBytes on every
// path, cached reads included. cmd/cfpq prints the pass table with
// -trace; cmd/cfpqd serves Prometheus metrics at GET /metrics, tags
// every request with an X-Request-ID, and dumps slow queries — request
// plus pass trace — past a -slow-query threshold.
//
// # Memory budgets
//
// WithMemoryBudget bounds the estimated matrix footprint of a closure —
// per call as an Option, or engine-wide via NewEngine(backend,
// cfpq.WithMemoryBudget(n)), where it also governs Prepare and every
// incremental patch. An evaluation that would exceed the budget fails
// fast between passes with a typed *MemoryBudgetError instead of
// thrashing the process; cmd/cfpqd maps the error to HTTP 413.
//
// # Serving queries
//
// cmd/cfpqd serves CFPQs over HTTP: it registers named graphs (N-Triples
// or edge-list documents) and grammars, and caches one Prepared handle per
// (graph, grammar, backend) combination — the HTTP layer is registry and
// naming only; caching, locking and incremental updates are the public
// Prepared machinery. A typical session:
//
//	cfpqd -addr :8080 &
//	curl -X PUT --data-binary @wine.nt 'localhost:8080/v1/graphs/wine?format=ntriples'
//	curl -X PUT --data-binary 'S -> subClassOf_r S subClassOf | subClassOf_r subClassOf' \
//	     localhost:8080/v1/grammars/samegen
//	curl -X POST -d '{"graph":"wine","grammar":"samegen","nonterminal":"S","output":"count"}' \
//	     localhost:8080/v1/query                   # declarative request; answer carries "explain"
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=count'  # legacy shim
//	curl -X POST -d '{"graph":"wine","grammar":"samegen","queries":[{"op":"count","nonterminal":"S"}]}' \
//	     localhost:8080/v1/query/batch
//	curl -X POST -d '{"edges":[{"from":"a","label":"subClassOf","to":"b"}]}' \
//	     localhost:8080/v1/graphs/wine/edges
//	curl localhost:8080/v1/stats       # build vs incremental-update products
//	curl localhost:8080/debug/vars     # includes per-strategy planner counters
//
// The service itself lives in internal/server and can be embedded
// in-process; cmd/cfpqd is a thin HTTP shell around it.
//
// # Durability and warm start
//
// `cfpqd -data-dir` persists everything the cost model says is worth
// keeping — above all the evaluated closure indexes, the expensive
// artifact of this paper's algorithm. The on-disk store (internal/store)
// holds per-graph snapshots, grammar texts, index files stamped with the
// edge-stream position they cover, and an append-only WAL of edge
// additions with CRC-framed, fsynced records. Mutations are write-ahead:
// the WAL record is durable before the in-memory graph or any cached
// index changes. On restart the service loads snapshots, replays WALs
// (truncating a torn tail to the last good record) and restores every
// saved index as a live Prepared handle — indexes behind the recovered
// stream are patched forward with the incremental delta closure, so no
// closure re-runs from scratch (see BENCH_warmstart.json for the cold
// versus warm gap).
//
// Library users compose the same pieces directly:
//
//	p.WriteIndex(w)                         // persist a handle's index (CFPQIDX2)
//	ix, _ := eng.LoadIndex(r, cnf)          // reload it (backend recorded in the header)
//	p, _ := eng.PrepareFromIndex(g, cnf, ix) // serve it — Build stats stay zero
//	p.AttachWAL(log)                        // tee AddEdges into a durable log, write-ahead
//
// # Replication
//
// The same WAL doubles as a replication stream. `cfpqd -follow
// <leader-url>` runs a read replica (internal/replica): it bootstraps
// graphs and grammars from the leader's snapshots, then tails the leader's
// WAL over HTTP long-polls and applies each CRC-framed batch exactly the
// way a warm start would — journaled write-ahead into its own store, then
// delta-patched into every cached index; a follower never re-runs a
// closure to absorb replicated writes. Replication is asynchronous with
// measured staleness (applied seq vs leader seq, pending WAL bytes, lag
// age) reported by GET /v1/replication/status; /readyz turns 503 when a
// follower bootstraps, loses its leader, or lags beyond -max-lag, and
// POST /v1/promote detaches it into a writable leader.
//
// # Static analysis
//
// The engine's cross-cutting invariants — no blocking work under a
// guarded mutex, caller contexts threaded end to end, write-ahead
// journaling before in-memory mutation, compile-time metric-name
// hygiene, an allocation-free nil-tracer fast path — are enforced by
// five custom analyzers in internal/lint, packaged as the cmd/cfpqlint
// multichecker and run in CI:
//
//	go run ./cmd/cfpqlint ./...
//
// Deliberate exceptions carry an in-source justification via
// `//lint:allow cfpqlint/<name> <why>`; the README's "Static analysis"
// section documents each analyzer and the directive's scope.
//
// Subpackages under internal/ implement the machinery: grammars and CNF
// (internal/grammar), graphs, N-Triples and edge lists (internal/graph),
// Boolean matrix kernels (internal/matrix), the closure engine and path
// semantics (internal/core), the concurrent query service
// (internal/server), the durable store — WAL, snapshots, compaction
// (internal/store), WAL shipping and follower apply (internal/replica),
// the Hellings and GLL baselines (internal/baseline),
// the paper's evaluation datasets (internal/dataset) and the table harness
// (internal/bench) — all of which evaluate through the public Engine.
package cfpq
