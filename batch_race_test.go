package cfpq_test

// Race test (meaningful under `go test -race .`, which CI runs for this
// package): QueryBatch and the source-filtered readers racing AddEdges on
// one Prepared handle, including edges that grow the node set mid-flight.

import (
	"context"
	"sync"
	"testing"

	"cfpq"
)

func TestQueryBatchRacesAddEdges(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(8)
	for i := 0; i < 7; i++ {
		g.AddEdge(i, "a", i+1)
	}
	g.AddEdge(7, "b", 0)
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	p, err := cfpq.NewEngine(cfpq.SparseParallel(0)).Prepare(ctx, g, gram)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		rounds  = 40
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res := p.QueryBatch(ctx, []cfpq.Request{
					{Nonterminal: "S", Output: cfpq.OutputCount},
					{Nonterminal: "S"},
					{Nonterminal: "S", Output: cfpq.OutputExists, Sources: []int{0}, Targets: []int{i % 16}},
					{Nonterminal: "S", Sources: []int{r, i % 8}},
					{Nonterminal: "S", Output: cfpq.OutputCount, Sources: []int{0, 1, 2}},
				})
				for _, re := range res {
					if re.Err != nil {
						t.Errorf("batch query error under race: %v", re.Err)
						return
					}
				}
				// The streamed reader participates in the race too.
				for range p.PairsFrom(context.Background(), "S", []int{i % 8}) {
					break
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Alternate between in-range edges and node-growing edges, so
			// batches race both delta patches and matrix Grow.
			e := cfpq.Edge{From: i % 8, Label: "a", To: (i + 1) % 8}
			if i%5 == 0 {
				e = cfpq.Edge{From: i % 8, Label: "b", To: 8 + i}
			}
			if _, err := p.AddEdges(ctx, e); err != nil {
				t.Errorf("AddEdges under race: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles, a batch must agree with the single-query
	// surface on the final state.
	res := p.QueryBatch(ctx, []cfpq.Request{{Nonterminal: "S", Output: cfpq.OutputCount}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if got, want := res[0].Result.Count, p.Count(context.Background(), "S"); got != want {
		t.Fatalf("post-race count: batch %d, single %d", got, want)
	}
}
