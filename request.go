package cfpq

import "fmt"

// Request is the one declarative query shape of this library: it names a
// path language (a CFG non-terminal, an RPQ expression, or a conjunctive
// grammar), an optional restriction (source nodes, target nodes, or both —
// a single pair is one source and one target), and the wanted output
// (existence, a count, the pair relation, or witness paths). A Request is
// evaluated by the planner behind Engine.Do and Prepared.Do, which chooses
// the cheapest evaluation strategy — full closure, source frontier, target
// frontier over the reversed graph, or a cached-index read — instead of
// the caller hard-wiring one; Result.Explain records the choice.
//
// The plain-data fields carry JSON tags, so a Request round-trips through
// encoding/json — the wire shape cfpqd's POST /v1/query speaks (with node
// names in place of ids). Graph, Grammar, Conjunctive and Options are
// call-site bindings and are never serialised.
type Request struct {
	// Nonterminal queries the relation R_Nonterminal of a context-free
	// grammar — Grammar for Engine.Do, the bound grammar for Prepared.Do,
	// or Conjunctive when that is set. Exactly one of Nonterminal and Expr
	// must be set.
	Nonterminal string `json:"nonterminal,omitempty"`
	// Expr queries a regular path query expression (see Engine.RPQ for the
	// syntax); it is compiled to a right-linear grammar and planned like
	// any other CFG query, so restrictions apply to it too.
	Expr string `json:"expr,omitempty"`

	// Grammar is the context-free grammar a Nonterminal request evaluates
	// under Engine.Do. Prepared.Do uses the handle's bound grammar and
	// rejects requests carrying their own.
	Grammar *Grammar `json:"-"`
	// Conjunctive, when set, evaluates Nonterminal under a conjunctive
	// grammar instead of Grammar (upper approximation on cyclic graphs,
	// exact on linear ones — the paper's §7 hypothesis).
	Conjunctive *ConjunctiveGrammar `json:"-"`
	// Graph is the queried graph for Engine.Do. Prepared.Do uses the bound
	// graph and rejects requests carrying their own.
	Graph *Graph `json:"-"`

	// Sources, when non-nil, restricts the answer to pairs (i, j) with
	// i ∈ Sources. A non-nil empty set is a real restriction — it selects
	// nothing. nil means unrestricted. (Deliberately not omitempty: an
	// empty restriction must survive a JSON round trip as [] rather than
	// silently becoming unrestricted.)
	Sources []int `json:"sources"`
	// Targets, when non-nil, restricts the answer to pairs (i, j) with
	// j ∈ Targets, evaluated (absent a cheaper plan) with the source
	// frontier of the reversed graph and grammar. nil means unrestricted.
	Targets []int `json:"targets"`

	// Output selects what the Result carries; the zero value means
	// OutputPairs.
	Output Output `json:"output,omitempty"`
	// Limit bounds the number of pairs (OutputPairs) or paths
	// (OutputPaths) returned; 0 means no pair limit and the default path
	// cap (1024). A clipped answer sets Result.Truncated. OutputCount is
	// exact and rejects a Limit (Validate); OutputExists ignores it.
	Limit int `json:"limit,omitempty"`
	// MaxPathLength bounds the length of enumerated paths (OutputPaths);
	// 0 selects a generous default derived from the instance size.
	MaxPathLength int `json:"max_path_length,omitempty"`
	// EmptyPaths includes the reflexive pairs (v, v) when the queried
	// language contains the empty word (only empty paths are labelled ε).
	// Engine.Do only; a cached index holds the closure relation and
	// Prepared.Do rejects it.
	EmptyPaths bool `json:"empty_paths,omitempty"`
	// Trace asks the evaluation to collect its per-pass trace into
	// Result.Explain.Passes — one PassEvent per closure pass, the table
	// `cfpq -trace` prints. Cached reads run no passes and return an empty
	// table. Collection costs allocations proportional to passes ×
	// non-terminals; leave it off on hot paths.
	Trace bool `json:"trace,omitempty"`

	// Options are per-call evaluation options (iteration schedule, trace,
	// deprecated backend overrides) applied by Engine.Do.
	Options []Option `json:"-"`
}

// Output selects what a Request computes.
type Output string

// The request outputs.
const (
	// OutputPairs returns the (restricted) pair relation, streamed by
	// Result.Pairs. The zero Output value means OutputPairs.
	OutputPairs Output = "pairs"
	// OutputCount returns only the number of pairs.
	OutputCount Output = "count"
	// OutputExists reports whether any pair satisfies the restriction.
	OutputExists Output = "exists"
	// OutputPaths enumerates witness paths for a single (source, target)
	// pair, streamed by Result.Paths; Limit and MaxPathLength bound the
	// enumeration.
	OutputPaths Output = "paths"
)

// RequestError is the structured validation error of a malformed Request:
// Field names the offending field (as in the JSON wire form), Reason says
// what is wrong with it. HTTP layers map it to a 400.
type RequestError struct {
	Field  string
	Reason string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("cfpq: invalid request: %s: %s", e.Field, e.Reason)
}

func reqErr(field, format string, args ...any) *RequestError {
	return &RequestError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// normOutput resolves the zero Output value to OutputPairs.
func (r *Request) normOutput() Output {
	if r.Output == "" {
		return OutputPairs
	}
	return r.Output
}

// Validate checks the request's wire-expressible invariants — language
// choice, output kind, restriction shape, bounds — and returns a
// *RequestError naming the offending field. Call-site bindings (Graph,
// Grammar) are checked by Do, which knows which surface is answering.
func (r *Request) Validate() error {
	if r.Nonterminal == "" && r.Expr == "" {
		return reqErr("nonterminal", "one of nonterminal or expr is required")
	}
	if r.Nonterminal != "" && r.Expr != "" {
		return reqErr("expr", "nonterminal and expr are mutually exclusive")
	}
	if r.Conjunctive != nil && r.Expr != "" {
		return reqErr("expr", "a conjunctive grammar answers nonterminal requests only")
	}
	if r.Grammar != nil && r.Expr != "" {
		return reqErr("expr", "a request carries either a Grammar or an Expr, not both")
	}
	if r.Grammar != nil && r.Conjunctive != nil {
		return reqErr("grammar", "a request carries either a Grammar or a Conjunctive grammar, not both")
	}
	switch r.Output {
	case "", OutputPairs, OutputCount, OutputExists, OutputPaths:
	default:
		return reqErr("output", "unknown output %q (want pairs, count, exists or paths)", r.Output)
	}
	if r.Limit < 0 {
		return reqErr("limit", "must be non-negative, got %d", r.Limit)
	}
	if r.Limit > 0 && r.Output == OutputCount {
		// A count is exact by definition; silently capping it would make
		// two different questions answer alike. Rejecting beats ignoring.
		return reqErr("limit", "count output is exact and ignores no limit; drop the limit or ask for pairs")
	}
	if r.MaxPathLength < 0 {
		return reqErr("max_path_length", "must be non-negative, got %d", r.MaxPathLength)
	}
	for _, s := range r.Sources {
		if s < 0 {
			return reqErr("sources", "negative node id %d", s)
		}
	}
	for _, t := range r.Targets {
		if t < 0 {
			return reqErr("targets", "negative node id %d", t)
		}
	}
	if r.normOutput() == OutputPaths {
		if len(r.Sources) != 1 || len(r.Targets) != 1 {
			return reqErr("output", "paths output needs exactly one source and one target")
		}
		if r.Conjunctive != nil {
			return reqErr("output", "conjunctive queries have no path extraction; ask for pairs, count or exists")
		}
	}
	return nil
}
