package cfpq

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestQuickstartFromDoc(t *testing.T) {
	// The doc.go example must work exactly as written.
	eng := NewEngine(Sparse)
	g := NewGraph(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	gram, err := ParseGrammar("S -> a S b | a b")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.Query(context.Background(), g, gram, "S")
	if err != nil {
		t.Fatal(err)
	}
	if want := []Pair{{I: 0, J: 2}}; !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	// The deprecated free-function form keeps working.
	legacy, err := Query(g, gram, "S")
	if err != nil || !reflect.DeepEqual(legacy, pairs) {
		t.Errorf("legacy Query = %v, %v", legacy, err)
	}
}

func TestQueryBackendsAgreeViaPublicAPI(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	gram := MustParseGrammar("S -> a S b | a b")
	var ref []Pair
	for i, opt := range []Option{WithDense(), WithDenseParallel(2), WithSparse(), WithSparseParallel(2)} {
		pairs, err := Query(g, gram, "S", opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = pairs
			continue
		}
		if !reflect.DeepEqual(pairs, ref) {
			t.Errorf("backend %d disagrees: %v vs %v", i, pairs, ref)
		}
	}
}

func TestEvaluateAndSinglePath(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	cnf, err := ToCNF(MustParseGrammar("S -> a b"))
	if err != nil {
		t.Fatal(err)
	}
	ix, stats := Evaluate(g, cnf)
	if !ix.Has("S", 0, 2) {
		t.Error("(0,2) missing")
	}
	if stats.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	px := SinglePath(g, cnf)
	path, ok := px.Path("S", 0, 2)
	if !ok || len(path) != 2 {
		t.Errorf("path = %v, ok=%v", path, ok)
	}
}

func TestAllPathsPublicAPI(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	cnf, _ := ToCNF(MustParseGrammar("S -> a b"))
	ix, _ := Evaluate(g, cnf)
	paths, err := AllPaths(g, ix, "S", 0, 2, AllPathsOptions{})
	if err != nil || len(paths) != 1 {
		t.Errorf("paths = %v, err = %v", paths, err)
	}
	if _, err := AllPaths(g, ix, "Nope", 0, 2, AllPathsOptions{}); err == nil {
		t.Error("unknown non-terminal should error")
	}
}

func TestWithEmptyPaths(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, "a", 1)
	gram := MustParseGrammar("S -> a S | eps")
	pairs, err := Query(g, gram, "S", WithEmptyPaths())
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{I: 0, J: 0}, {I: 0, J: 1}, {I: 1, J: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestLoadNTriplesPublicAPI(t *testing.T) {
	g, ids, err := LoadNTriples(strings.NewReader("<x> <p> <y> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 2 || g.EdgeCount() != 2 {
		t.Errorf("graph = %v", g)
	}
	gram := MustParseGrammar("S -> p_r")
	pairs, err := Query(g, gram, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].I != ids["y"] || pairs[0].J != ids["x"] {
		t.Errorf("inverse-edge query = %v (ids %v)", pairs, ids)
	}
}

func TestQueryErrors(t *testing.T) {
	g := NewGraph(1)
	gram := MustParseGrammar("S -> a")
	if _, err := Query(g, gram, "Missing"); err == nil {
		t.Error("unknown start non-terminal should error")
	}
}
