package cfpq_test

// Property tests for the per-pass trace at the public API. The trace's
// load-bearing invariant is that per-nonterminal nnz deltas telescope:
// each pass's Before counts equal the previous pass's After counts — even
// across a mid-evaluation schedule switch (frontier saturation fallback)
// — so the summed deltas of the start nonterminal equal the bits the
// evaluation added to its relation. For a fresh unrestricted run that sum
// is exactly the final relation size; for an incremental update it is
// exactly the pairs the update derived.

import (
	"context"
	"math/rand"
	"testing"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

// startDelta sums the per-pass nnz deltas of one nonterminal.
func startDelta(passes []cfpq.PassEvent, nt string) int {
	total := 0
	for _, ev := range passes {
		for _, z := range ev.NNZ {
			if z.Nonterminal == nt {
				total += z.Delta()
			}
		}
	}
	return total
}

// checkChained fails unless consecutive events chain per nonterminal
// (Before of pass k == After of pass k-1) and pass numbers ascend from 0.
func checkChained(t *testing.T, passes []cfpq.PassEvent) {
	t.Helper()
	prev := map[string]int{}
	for k, ev := range passes {
		if ev.Pass != k {
			t.Fatalf("pass %d numbered %d", k, ev.Pass)
		}
		for _, z := range ev.NNZ {
			if k > 0 && z.Before != prev[z.Nonterminal] {
				t.Fatalf("pass %d %s: before=%d, previous after=%d (phase %s)",
					k, z.Nonterminal, z.Before, prev[z.Nonterminal], ev.Phase)
			}
			if z.After < z.Before {
				t.Fatalf("pass %d %s: nnz shrank %d -> %d", k, z.Nonterminal, z.Before, z.After)
			}
			prev[z.Nonterminal] = z.After
		}
	}
}

func TestTraceDeltasEqualRelationSizeProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	cfg := grammar.DefaultRandomConfig()
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for _, be := range cfpq.Backends() {
		eng := cfpq.NewEngine(be)
		for trial := 0; trial < trials; trial++ {
			gram := grammar.RandomGrammar(rng, cfg)
			nts := gram.Nonterminals()
			start := nts[rng.Intn(len(nts))]
			labels := gram.Terminals()
			if len(labels) == 0 {
				continue
			}
			n := 4 + rng.Intn(16)
			g := graph.Random(rng, n, 2+rng.Intn(3*n), labels)

			res, err := eng.Do(ctx, cfpq.Request{
				Graph: g, Grammar: gram, Nonterminal: start,
				Output: cfpq.OutputCount, Trace: true,
			})
			if err != nil {
				continue // e.g. a grammar the CNF conversion rejects
			}
			passes := res.Explain.Passes
			if len(passes) == 0 {
				t.Fatalf("%s trial %d: traced run returned no passes", be, trial)
			}
			checkChained(t, passes)
			if got := startDelta(passes, start); got != res.Count {
				t.Errorf("%s trial %d: summed %s deltas = %d, relation size = %d",
					be, trial, start, got, res.Count)
			}
			for _, ev := range passes {
				if ev.Nodes != g.Nodes() {
					t.Errorf("%s trial %d: pass %d nodes = %d, graph has %d",
						be, trial, ev.Pass, ev.Nodes, g.Nodes())
				}
				if ev.Bytes <= 0 {
					t.Errorf("%s trial %d: pass %d bytes = %d", be, trial, ev.Pass, ev.Bytes)
				}
			}
			if res.Stats.Duration <= 0 {
				t.Errorf("%s trial %d: stats.Duration = %v", be, trial, res.Stats.Duration)
			}
		}
	}
}

func TestTraceChainsAcrossFrontierFallback(t *testing.T) {
	// A long chain queried from its head keeps the frontier strategy; a
	// dense source set saturates and falls back to the full schedule. In
	// both cases — and especially across the fallback's phase switch —
	// events must chain so the summed deltas stay meaningful.
	ctx := context.Background()
	gram := cfpq.MustParseGrammar("S -> a S | a")
	for _, be := range cfpq.Backends() {
		eng := cfpq.NewEngine(be)
		n := 24
		g := cfpq.NewGraph(n)
		for v := 0; v+1 < n; v++ {
			g.AddEdge(v, "a", v+1)
		}
		sources := make([]int, 0, n)
		for v := 0; v < n; v++ {
			sources = append(sources, v)
		}
		res, err := eng.Do(ctx, cfpq.Request{
			Graph: g, Grammar: gram, Nonterminal: "S",
			Sources: sources, Output: cfpq.OutputCount, Trace: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		if len(res.Explain.Passes) == 0 {
			t.Fatalf("%s: no passes", be)
		}
		checkChained(t, res.Explain.Passes)
		// The relation is all (i,j) with i<j: summed start deltas must
		// equal its size regardless of which schedule(s) ran.
		want := n * (n - 1) / 2
		if got := startDelta(res.Explain.Passes, "S"); got != want {
			t.Errorf("%s: summed deltas = %d, want %d", be, got, want)
		}
		sawFrontier := false
		for _, ev := range res.Explain.Passes {
			if ev.Phase == "frontier" {
				sawFrontier = true
				if s := ev.Saturation(); s < 0 || s > 1 {
					t.Errorf("%s: saturation %f out of range", be, s)
				}
			}
		}
		if res.Explain.Strategy == cfpq.StrategySourceFrontier && !sawFrontier {
			t.Errorf("%s: source-frontier plan but no frontier-phase events", be)
		}
	}
}

func TestTraceUpdateDeltasEqualDerivedPairs(t *testing.T) {
	// Incremental updates re-base the trace on the pre-update index, so the
	// summed start-nonterminal deltas of the update's events are exactly
	// the pairs the update derived. The engine-wide tracer (WithTracer)
	// observes them; Prepared.AddEdges has no Request to set Trace on.
	ctx := context.Background()
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	for _, be := range cfpq.Backends() {
		var events []cfpq.PassEvent
		eng := cfpq.NewEngine(be, cfpq.WithTracer(cfpq.Trace{
			Pass: func(ev cfpq.PassEvent) {
				// Copy: the hook's slices are not retained by contract.
				cp := ev
				cp.NNZ = append([]cfpq.NNZ(nil), ev.NNZ...)
				events = append(events, cp)
			},
		}))
		g := cfpq.NewGraph(8)
		g.AddEdge(0, "a", 1)
		g.AddEdge(1, "b", 2)
		p, err := eng.Prepare(ctx, g, gram)
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		before, err := p.Do(ctx, cfpq.Request{Nonterminal: "S", Output: cfpq.OutputCount})
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		events = events[:0]
		if _, err := p.AddEdges(ctx,
			cfpq.Edge{From: 1, Label: "a", To: 3},
			cfpq.Edge{From: 3, Label: "b", To: 4},
			cfpq.Edge{From: 4, Label: "b", To: 5},
		); err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		after, err := p.Do(ctx, cfpq.Request{Nonterminal: "S", Output: cfpq.OutputCount})
		if err != nil {
			t.Fatalf("%s: %v", be, err)
		}
		if len(events) == 0 {
			t.Fatalf("%s: update fired no trace events", be)
		}
		for _, ev := range events {
			if ev.Phase != "update" {
				t.Errorf("%s: update event in phase %q", be, ev.Phase)
			}
		}
		if got, want := startDelta(events, "S"), after.Count-before.Count; got != want {
			t.Errorf("%s: summed update deltas = %d, derived pairs = %d", be, got, want)
		}
		if after.Count <= before.Count {
			t.Fatalf("%s: update derived nothing (%d -> %d)", be, before.Count, after.Count)
		}
	}
}

func TestCachedReadReportsDurationAndNoPasses(t *testing.T) {
	ctx := context.Background()
	gram := cfpq.MustParseGrammar("S -> a b")
	g := cfpq.NewGraph(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	eng := cfpq.NewEngine(cfpq.Sparse)
	p, err := eng.Prepare(ctx, g, gram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Do(ctx, cfpq.Request{Nonterminal: "S", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != cfpq.StrategyCachedRead {
		t.Fatalf("strategy = %s, want cached read", res.Explain.Strategy)
	}
	if len(res.Explain.Passes) != 0 {
		t.Errorf("cached read reported %d passes", len(res.Explain.Passes))
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("cached read stats.Duration = %v, want > 0", res.Stats.Duration)
	}
}
