#!/usr/bin/env bash
# Two-process replication smoke test: start a durable leader and a durable
# follower, write on the leader, check the follower converges to identical
# query answers, then promote the follower and write to it. Exercises the
# real binaries over real HTTP — the in-process integration tests cover
# the hard interleavings; this catches wiring that only breaks end to end
# (flags, routes, process lifecycle).
set -euo pipefail

LEADER_PORT="${LEADER_PORT:-18080}"
FOLLOWER_PORT="${FOLLOWER_PORT:-18081}"
LEADER="http://127.0.0.1:${LEADER_PORT}"
FOLLOWER="http://127.0.0.1:${FOLLOWER_PORT}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

die() { echo "replication_smoke: FAIL: $*" >&2; exit 1; }

# wait_until <deadline-seconds> <cmd...>: poll until cmd succeeds.
wait_until() {
  local deadline=$1; shift
  local start now
  start=$(date +%s)
  until "$@" >/dev/null 2>&1; do
    now=$(date +%s)
    (( now - start < deadline )) || die "timed out waiting for: $*"
    sleep 0.2
  done
}

echo "building cfpqd..."
go build -o "$workdir/cfpqd" ./cmd/cfpqd

echo "starting leader on :${LEADER_PORT}..."
"$workdir/cfpqd" -addr ":${LEADER_PORT}" -data-dir "$workdir/leader" >"$workdir/leader.log" 2>&1 &
pids+=($!)
wait_until 15 curl -sf "$LEADER/healthz"

echo "loading graph and grammar on the leader..."
printf 'alice\tknows\tbob\nbob\tknows\tcarol\ncarol\tknows\tdora\n' |
  curl -sf -X PUT --data-binary @- "$LEADER/v1/graphs/social" >/dev/null
curl -sf -X PUT --data-binary 'S -> knows | knows S' "$LEADER/v1/grammars/reach" >/dev/null

echo "starting follower on :${FOLLOWER_PORT}..."
"$workdir/cfpqd" -addr ":${FOLLOWER_PORT}" -data-dir "$workdir/follower" \
  -follow "$LEADER" -follower-id smoke >"$workdir/follower.log" 2>&1 &
pids+=($!)
wait_until 15 curl -sf "$FOLLOWER/readyz"

query='{"graph":"social","grammar":"reach","nonterminal":"S"}'
# Strip the stats object before comparing: duration_ns is wall time and
# legitimately differs between nodes answering the same query.
ask() { curl -sf -X POST -d "$query" "$1/v1/query" | sed 's/"stats":{[^}]*}//'; }

[ "$(ask "$LEADER")" = "$(ask "$FOLLOWER")" ] || die "bootstrap answers differ"

echo "opening a live subscription on the follower..."
curl -sNf -X POST -d "$query" "$FOLLOWER/v1/subscribe" >"$workdir/sse.log" 2>&1 &
pids+=($!)
wait_until 15 grep -q 'subscribed' "$workdir/sse.log"

echo "writing on the leader, waiting for the follower to converge..."
curl -sf -X POST -d '{"edges":[{"from":"dora","label":"knows","to":"alice"}]}' \
  "$LEADER/v1/graphs/social/edges" >/dev/null
converged() { [ "$(ask "$LEADER")" = "$(ask "$FOLLOWER")" ]; }
wait_until 15 converged

echo "checking the leader write reached the follower subscription..."
# The edge ships over the WAL, the follower's replicated apply patches its
# cached index, and the subscription pushes the patch's delta as an SSE
# pairs event — no polling, no full-result diffing.
sse_pushed() { grep -q 'event: pairs' "$workdir/sse.log" && grep -q '"from":"dora","to":"alice"' "$workdir/sse.log"; }
wait_until 15 sse_pushed
curl -sf "$FOLLOWER/debug/vars" | grep -q 'cfpqd_subscriptions' ||
  die "follower /debug/vars missing cfpqd_subscriptions"

echo "scraping /metrics on both nodes..."
# The leader has served queries, so its scrape must carry the request
# latency histogram; the converged follower's replication lag gauge must
# read 0 records behind. Scrapes land in files first: under pipefail,
# `curl | grep -q` can fail spuriously when grep closes the pipe early.
curl -sf "$LEADER/metrics" >"$workdir/leader_metrics"
grep -q '^cfpqd_http_request_duration_seconds_bucket{' "$workdir/leader_metrics" ||
  die "leader /metrics missing request latency histogram"
grep -q '^cfpqd_build_info{' "$workdir/leader_metrics" ||
  die "leader /metrics missing build_info"
lag_zero() {
  curl -sf "$FOLLOWER/metrics" >"$workdir/follower_metrics" &&
    grep -q '^cfpqd_replication_lag_records 0$' "$workdir/follower_metrics"
}
wait_until 15 lag_zero
grep -q '^cfpqd_subscription_dropped_total' "$workdir/follower_metrics" ||
  die "follower /metrics missing subscription drop counter"

echo "checking the follower's write gate and status..."
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"edges":[{"from":"x","label":"knows","to":"y"}]}' "$FOLLOWER/v1/graphs/social/edges")
[ "$code" = "403" ] || die "follower write answered $code, want 403"
curl -sf "$FOLLOWER/v1/replication/status" | grep -q '"role":"follower"' ||
  die "follower status missing role=follower"
curl -sf "$LEADER/v1/replication/status" | grep -q '"role":"leader"' ||
  die "leader status missing role=leader"

echo "promoting the follower..."
curl -sf -X POST "$FOLLOWER/v1/promote" >/dev/null
curl -sf -X POST -d '{"edges":[{"from":"zed","label":"knows","to":"alice"}]}' \
  "$FOLLOWER/v1/graphs/social/edges" >/dev/null || die "promoted follower rejected a write"
wait_until 15 curl -sf "$FOLLOWER/readyz"

echo "replication_smoke: PASS"
