package cfpq

import (
	"context"
	"fmt"
	"io"

	"cfpq/internal/core"
)

// Engine is the one query surface of this library: a closure engine bound
// to a matrix Backend. Its evaluation entry point is Do, which plans a
// declarative Request (full closure, source frontier, target frontier) —
// the named query methods (Query, QueryFrom, QueryTo, RPQ,
// QueryConjunctive, QueryBatch) are sugar over it, alongside the
// index-level APIs: full closures, single-/shortest-/all-path semantics,
// incremental updates and index (de)serialisation. Construct it once and
// share it: an Engine is immutable and safe for concurrent use; all
// per-call state lives in the arguments and results.
//
// Every query method takes a context.Context that is checked between
// closure passes, so long evaluations on large graphs can be cancelled or
// given deadlines; a cancelled call returns ctx.Err().
//
// For repeated queries against one (graph, grammar) pair, Prepare a
// Prepared handle instead of re-running the closure per call.
type Engine struct {
	backend Backend
	// engineOpts are engine-level evaluation options (such as
	// WithMemoryBudget) applied to every closure this engine runs —
	// including Prepare/PrepareCNF index builds — before any per-call
	// options.
	engineOpts []core.Option
}

// NewEngine returns an engine evaluating with the given backend. The zero
// Backend value selects serial sparse. Options passed here apply to every
// evaluation the engine runs (the typical use is WithMemoryBudget, which
// must also govern Prepare's index build); per-call options are applied on
// top of them.
func NewEngine(b Backend, opts ...Option) *Engine {
	return &Engine{backend: b, engineOpts: buildConfig(opts).engineOpts}
}

// Backend returns the engine's backend.
func (e *Engine) Backend() Backend { return e.backend }

// resolveBackend applies the (deprecated) per-call backend override to the
// engine's backend.
func (e *Engine) resolveBackend(cfg *config) Backend {
	if cfg.backend != nil {
		return *cfg.backend
	}
	return e.backend
}

// newCore resolves per-call options against the engine's backend and
// builds the internal closure engine. This is deliberately the only place
// in the library that constructs core.NewEngine: every evaluation path —
// library, server, CLI, bench — funnels through it.
func (e *Engine) newCore(cfg *config) *core.Engine {
	opts := make([]core.Option, 0, 1+len(e.engineOpts)+len(cfg.engineOpts))
	opts = append(opts, core.WithBackend(e.resolveBackend(cfg).mat()))
	opts = append(opts, e.engineOpts...)
	opts = append(opts, cfg.engineOpts...)
	return core.NewEngine(opts...)
}

// Query evaluates R_start on the graph under the relational semantics and
// returns the sorted pair list. It is sugar for an unrestricted
// OutputPairs Request evaluated by Do.
func (e *Engine) Query(ctx context.Context, g *Graph, gram *Grammar, start string, opts ...Option) ([]Pair, error) {
	res, err := e.Do(ctx, Request{Graph: g, Grammar: gram, Nonterminal: start, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.AllPairs(), nil
}

// QueryFrom evaluates R_start restricted to the given source nodes: the
// result is exactly Query's pair list filtered to pairs (i, j) with i ∈
// sources. Instead of paying for the full n×n closure, the evaluation
// maintains only the matrix rows of the reachable frontier — the sources
// plus every node heading a derivation fragment they reach — and falls back
// to the full closure only when that frontier saturates (more than half of
// all nodes). This is the right call shape for the dominant serving
// workload, "what can these nodes reach via S?".
//
// An empty source set yields an empty result. Sources outside the graph's
// node range are an error; duplicates are deduplicated. It is sugar for a
// source-restricted Request evaluated by Do.
func (e *Engine) QueryFrom(ctx context.Context, g *Graph, gram *Grammar, start string, sources []int, opts ...Option) ([]Pair, error) {
	pairs, _, err := e.QueryFromStats(ctx, g, gram, start, sources, opts...)
	return pairs, err
}

// FromStats reports what a source-restricted evaluation did: closure work,
// the final frontier size, and whether the frontier saturated (forcing a
// full-closure fallback).
type FromStats = core.FromStats

// QueryFromStats is QueryFrom, additionally reporting the restricted
// closure's work — the numbers the bench harness tracks when comparing
// single-source against all-pairs evaluation.
func (e *Engine) QueryFromStats(ctx context.Context, g *Graph, gram *Grammar, start string, sources []int, opts ...Option) ([]Pair, FromStats, error) {
	if sources == nil {
		sources = []int{} // a Request distinguishes nil (unrestricted) from empty
	}
	res, err := e.Do(ctx, Request{Graph: g, Grammar: gram, Nonterminal: start, Sources: sources, Options: opts})
	if err != nil {
		return nil, FromStats{}, err
	}
	return res.AllPairs(), FromStats{Stats: res.Stats, Frontier: res.Explain.Frontier, Saturated: res.Explain.Saturated}, nil
}

// QueryTo evaluates R_start restricted to the given target nodes: the
// result is exactly Query's pair list filtered to pairs (i, j) with j ∈
// targets, evaluated by the target-frontier strategy (the source frontier
// of the reversed graph under the reversed grammar) with the same
// saturation fallback as QueryFrom — the call shape of "what reaches these
// nodes via S?". It is sugar for a target-restricted Request evaluated by
// Do.
func (e *Engine) QueryTo(ctx context.Context, g *Graph, gram *Grammar, start string, targets []int, opts ...Option) ([]Pair, error) {
	if targets == nil {
		targets = []int{}
	}
	res, err := e.Do(ctx, Request{Graph: g, Grammar: gram, Nonterminal: start, Targets: targets, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.AllPairs(), nil
}

// Evaluate runs the matrix closure and returns the full Index, from which
// the relation of every non-terminal can be read (Relation, Has, Count).
// Use this instead of Query when several non-terminals are of interest.
func (e *Engine) Evaluate(ctx context.Context, g *Graph, cnf *CNF, opts ...Option) (*Index, Stats, error) {
	return e.newCore(buildConfig(opts)).RunContext(ctx, g, cnf)
}

// SinglePath evaluates the single-path query semantics: the returned
// PathIndex reports, for every pair of every relation, a witness-path
// length (Length) and a concrete path of exactly that length (Path).
func (e *Engine) SinglePath(ctx context.Context, g *Graph, cnf *CNF) (*PathIndex, error) {
	return core.NewPathIndexContext(ctx, g, cnf)
}

// ShortestPath is SinglePath with minimal witness lengths: the recorded
// length (and the extracted path) of every pair is the shortest possible,
// as in Hellings' single-path algorithm.
func (e *Engine) ShortestPath(ctx context.Context, g *Graph, cnf *CNF) (*PathIndex, error) {
	return core.NewShortestPathIndexContext(ctx, g, cnf)
}

// AllPaths enumerates distinct paths witnessing (start, i, j) in
// nondecreasing length order, bounded by opts. The context is checked
// between length levels.
func (e *Engine) AllPaths(ctx context.Context, g *Graph, ix *Index, start string, i, j int, opts AllPathsOptions) ([][]Edge, error) {
	if _, ok := ix.CNF().Index(start); !ok {
		return nil, fmt.Errorf("cfpq: unknown non-terminal %q", start)
	}
	return ix.AllPathsContext(ctx, g, start, i, j, opts)
}

// RPQ evaluates a regular path query — the expression syntax is
//
//	subClassOf_r* type (a | b)+ c?
//
// — by compiling the expression to an NFA, the NFA to a right-linear
// grammar, and evaluating that grammar with this engine. It is sugar for
// an Expr Request evaluated by Do.
func (e *Engine) RPQ(ctx context.Context, g *Graph, expr string, opts ...Option) ([]Pair, error) {
	res, err := e.Do(ctx, Request{Graph: g, Expr: expr, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.AllPairs(), nil
}

// QueryConjunctive evaluates a conjunctive path query. Per the paper's
// Section 7 hypothesis (verified by this package's tests), the result is
// an upper approximation of the single-path relation on cyclic graphs and
// exact on linear inputs. It is sugar for a Conjunctive Request evaluated
// by Do.
func (e *Engine) QueryConjunctive(ctx context.Context, g *Graph, cg *ConjunctiveGrammar, start string, opts ...Option) ([]Pair, error) {
	res, err := e.Do(ctx, Request{Graph: g, Conjunctive: cg, Nonterminal: start, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.AllPairs(), nil
}

// Update incorporates newly added edges into an evaluated Index without
// recomputing the closure (dynamic CFPQ): only the consequences of the new
// edges are propagated. Frontier matrices come from the index's own
// backend, so an index built with a parallel kernel keeps it. Edges that
// grow the node set transparently resize the index in place first.
func (e *Engine) Update(ctx context.Context, ix *Index, edges ...Edge) (Stats, error) {
	st, _, err := e.newCore(&config{}).UpdateContext(ctx, ix, edges...)
	return st, err
}

// LoadIndex reads an index previously written by SaveIndex, materialised
// with this engine's backend. The CNF must be the grammar the index was
// computed for.
func (e *Engine) LoadIndex(r io.Reader, cnf *CNF) (*Index, error) {
	return core.ReadIndex(r, cnf, e.backend.mat())
}

// Prepare compiles the grammar and binds it to the graph: the closure is
// evaluated once and cached in the returned Prepared handle, which answers
// any number of concurrent queries and absorbs edge updates incrementally.
// Prepare takes ownership of g — mutate it only through Prepared.AddEdges.
func (e *Engine) Prepare(ctx context.Context, g *Graph, gram *Grammar) (*Prepared, error) {
	cnf, err := ToCNF(gram)
	if err != nil {
		return nil, err
	}
	return e.PrepareCNF(ctx, g, cnf)
}

// PrepareCNF is Prepare for a grammar already in Chomsky Normal Form,
// skipping the conversion (useful when many graphs share one grammar).
func (e *Engine) PrepareCNF(ctx context.Context, g *Graph, cnf *CNF) (*Prepared, error) {
	ix, build, err := e.newCore(&config{}).RunContext(ctx, g, cnf)
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, cnf: cnf, g: g, ix: ix, build: build}, nil
}

// PrepareFromIndex binds an already-evaluated index to its graph without
// re-running the closure — the warm-start path: load a persisted index
// (LoadIndex), patch it up to date with Update if edges were journaled
// after it was saved, and serve. The index must be the closure of g under
// cnf (or of a sub-multiset of g's edges whose missing consequences have
// been patched in with Update); binding an index computed for a different
// graph silently serves wrong answers, exactly like pairing LoadIndex
// with the wrong grammar would.
//
// The handle takes ownership of g. An index smaller than g's node range
// is grown in place; a cnf mismatch is an error. The returned handle's
// Build stats are zero — no closure ran — which is how serving layers
// distinguish warm starts from cold ones.
func (e *Engine) PrepareFromIndex(g *Graph, cnf *CNF, ix *Index) (*Prepared, error) {
	if ix == nil {
		return nil, fmt.Errorf("cfpq: PrepareFromIndex with nil index")
	}
	if ix.CNF() != cnf {
		// The index's relations are keyed by the CNF it was read/built
		// with; a different CNF value, even if textually equal, would
		// desynchronise non-terminal indexes.
		return nil, fmt.Errorf("cfpq: index was built for a different CNF value")
	}
	if g.Nodes() > ix.Nodes() {
		ix.Grow(g.Nodes())
	}
	return &Prepared{eng: e, cnf: cnf, g: g, ix: ix}, nil
}
