package cfpq

import "iter"

// Strategy names one of the planner's evaluation strategies — the value
// Result.Explain records and serving layers count per query.
type Strategy string

// The planner strategies.
const (
	// StrategyFull evaluates the full all-pairs closure (the paper's
	// Algorithm 1) and filters afterwards. Chosen for unrestricted
	// queries, path enumeration and conjunctive grammars.
	StrategyFull Strategy = "full"
	// StrategySourceFrontier evaluates only the matrix rows reachable from
	// the source restriction, falling back to the full closure on
	// saturation.
	StrategySourceFrontier Strategy = "source-frontier"
	// StrategyTargetFrontier evaluates the source frontier of the reversed
	// graph under the reversed grammar — the CFPQ duality
	// (i, j) ∈ R(G, D) ⟺ (j, i) ∈ R(rev G, rev D) — answering "what
	// reaches these targets?" without the full closure.
	StrategyTargetFrontier Strategy = "target-frontier"
	// StrategyCachedRead answers from a Prepared handle's cached closure
	// index with no closure work at all.
	StrategyCachedRead Strategy = "cached-read"
)

// Strategies lists every planner strategy, in the order serving layers
// report their counters.
func Strategies() []Strategy {
	return []Strategy{StrategyFull, StrategySourceFrontier, StrategyTargetFrontier, StrategyCachedRead}
}

// Explain records which plan answered a Request and why — the query
// surface's analogue of EXPLAIN output.
type Explain struct {
	// Strategy is the evaluation strategy the planner chose.
	Strategy Strategy `json:"strategy"`
	// Reason says, in one sentence, why that strategy won.
	Reason string `json:"reason"`
	// Frontier is the number of active rows a frontier strategy ended up
	// maintaining (0 for full and cached-read).
	Frontier int `json:"frontier,omitempty"`
	// Saturated reports that a frontier strategy outgrew the saturation
	// threshold and fell back to the full closure mid-evaluation.
	Saturated bool `json:"saturated,omitempty"`
	// Passes is the evaluation's per-pass trace, collected only when the
	// Request set Trace: one event per closure pass carrying products,
	// per-nonterminal nnz before/after, frontier saturation, estimated
	// bytes and wall time. Empty for cached reads (no closure ran).
	Passes []PassEvent `json:"passes,omitempty"`
}

// Result is the answer to one Request. Exactly the fields of the request's
// Output are meaningful: Exists for OutputExists, Count for OutputCount
// (and the pair/path count for the streaming outputs), Pairs for
// OutputPairs, Paths for OutputPaths. Stats is the closure work this
// evaluation performed (zero for cached reads) and Explain names the plan.
type Result struct {
	// Exists answers OutputExists.
	Exists bool `json:"exists,omitempty"`
	// Count answers OutputCount; for OutputPairs and OutputPaths it is the
	// number of elements the result streams (after Limit).
	Count int `json:"count"`
	// Truncated reports that Limit clipped the answer: an OutputPairs
	// relation with more than Count pairs, or an OutputPaths enumeration
	// with more than Count witnesses within MaxPathLength. Without it, a
	// limited request cannot distinguish "exactly Limit exist" from "at
	// least Limit exist". (OutputPaths without a Limit runs under the
	// enumerator's default cap, which is not reported here.)
	Truncated bool `json:"truncated,omitempty"`
	// Stats is the closure work performed by this evaluation.
	Stats Stats `json:"stats"`
	// Explain records the chosen plan.
	Explain Explain `json:"explain"`

	// The evaluation strategies all materialise before streaming, so the
	// backing slices are kept for AllPairs/AllPaths to hand out without a
	// second copy of the relation.
	pairs []Pair
	paths [][]Edge
}

// Pairs streams the result relation of an OutputPairs request in
// row-major order — a point-in-time snapshot materialised at evaluation
// time, so iteration holds no locks. Other outputs stream nothing.
func (r *Result) Pairs() iter.Seq[Pair] {
	return sliceSeq(r.pairs)
}

// AllPairs returns the result relation as a slice — the same snapshot
// Pairs streams, with no extra copy.
func (r *Result) AllPairs() []Pair {
	return r.pairs
}

// Paths streams the witness paths of an OutputPaths request in
// nondecreasing length order — a snapshot, like Pairs.
func (r *Result) Paths() iter.Seq[[]Edge] {
	return sliceSeq(r.paths)
}

// AllPaths returns the witness paths as a slice — the same snapshot Paths
// streams, with no extra copy.
func (r *Result) AllPaths() [][]Edge {
	return r.paths
}

// sliceSeq streams a materialised slice.
func sliceSeq[T any](xs []T) iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, x := range xs {
			if !yield(x) {
				return
			}
		}
	}
}
