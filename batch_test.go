package cfpq_test

import (
	"context"
	"errors"
	"slices"
	"testing"

	"cfpq"
)

// testPrepared builds a small prepared handle over the chain
// 0 -a-> 1 -a-> 2 -b-> 3 -b-> 4 with S -> a S b | a b; the tests below
// compare batch answers against the handle's own single-query methods
// rather than assuming the relation.
func testPrepared(t *testing.T, be cfpq.Backend) *cfpq.Prepared {
	t.Helper()
	g := cfpq.NewGraph(5)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 4)
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	p, err := cfpq.NewEngine(be).Prepare(context.Background(), g, gram)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreparedQueryBatchMatchesSingleQueries(t *testing.T) {
	for _, be := range cfpq.Backends() {
		p := testPrepared(t, be)
		reqs := []cfpq.Request{
			{Nonterminal: "S", Output: cfpq.OutputExists, Sources: []int{1}, Targets: []int{3}},
			{Nonterminal: "S", Output: cfpq.OutputExists, Sources: []int{0}, Targets: []int{3}},
			{Nonterminal: "S", Output: cfpq.OutputExists, Sources: []int{42}, Targets: []int{99}},
			{Nonterminal: "S", Output: cfpq.OutputCount},
			{Nonterminal: "S", Output: cfpq.OutputPairs},
			{Nonterminal: "S"}, // zero Output defaults to pairs
			{Nonterminal: "S", Output: cfpq.OutputCount, Sources: []int{0}},
			{Nonterminal: "S", Sources: []int{0, 1}},
		}
		res := p.QueryBatch(context.Background(), reqs)
		if len(res) != len(reqs) {
			t.Fatalf("%s: got %d results, want %d", be, len(res), len(reqs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: request %d: unexpected error %v", be, i, r.Err)
			}
			if got, want := r.Result.Explain.Strategy, cfpq.StrategyCachedRead; got != want {
				t.Fatalf("%s: request %d: strategy %q, want %q", be, i, got, want)
			}
		}
		if got, want := res[0].Result.Exists, p.Has(context.Background(), "S", 1, 3); got != want {
			t.Errorf("%s: exists(1,3) = %v, want %v", be, got, want)
		}
		if got, want := res[1].Result.Exists, p.Has(context.Background(), "S", 0, 3); got != want {
			t.Errorf("%s: exists(0,3) = %v, want %v", be, got, want)
		}
		if res[2].Result.Exists {
			t.Errorf("%s: out-of-range exists answered true", be)
		}
		if got, want := res[3].Result.Count, p.Count(context.Background(), "S"); got != want {
			t.Errorf("%s: count = %d, want %d", be, got, want)
		}
		if !slices.Equal(res[4].Result.AllPairs(), p.Relation(context.Background(), "S")) {
			t.Errorf("%s: pairs = %v, want %v", be, res[4].Result.AllPairs(), p.Relation(context.Background(), "S"))
		}
		if !slices.Equal(res[5].Result.AllPairs(), p.Relation(context.Background(), "S")) {
			t.Errorf("%s: default-output pairs = %v, want %v", be, res[5].Result.AllPairs(), p.Relation(context.Background(), "S"))
		}
		if got, want := res[6].Result.Count, p.CountFrom(context.Background(), "S", []int{0}); got != want {
			t.Errorf("%s: restricted count = %d, want %d", be, got, want)
		}
		if !slices.Equal(res[7].Result.AllPairs(), p.RelationFrom(context.Background(), "S", []int{0, 1})) {
			t.Errorf("%s: restricted pairs = %v, want %v", be, res[7].Result.AllPairs(), p.RelationFrom(context.Background(), "S", []int{0, 1}))
		}
	}
}

func TestQueryBatchPerRequestErrors(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	res := p.QueryBatch(context.Background(), []cfpq.Request{
		{Nonterminal: "Nope", Output: cfpq.OutputCount},
		{Nonterminal: "S", Output: "frobnicate"},
		{Nonterminal: "S", Expr: "a b"},
		{Output: cfpq.OutputCount},
		{Nonterminal: "S", Output: cfpq.OutputCount},
	})
	if res[0].Err == nil {
		t.Error("unknown non-terminal: expected per-request error")
	}
	var reqErr *cfpq.RequestError
	if res[1].Err == nil || !errors.As(res[1].Err, &reqErr) {
		t.Errorf("unknown output: expected a *RequestError, got %v", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("nonterminal+expr: expected per-request error")
	}
	if res[3].Err == nil {
		t.Error("no language: expected per-request error")
	}
	if res[4].Err != nil {
		t.Errorf("valid request after bad ones failed: %v", res[4].Err)
	}
}

func TestQueryBatchCancelledContext(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := p.QueryBatch(ctx, []cfpq.Request{{Nonterminal: "S", Output: cfpq.OutputCount}})
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Fatalf("cancelled batch: got %v, want context.Canceled", res[0].Err)
	}
}

func TestEngineQueryBatchOneShot(t *testing.T) {
	g := cfpq.NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	eng := cfpq.NewEngine(cfpq.Sparse)
	res, err := eng.QueryBatch(context.Background(), g, gram, []cfpq.Request{
		{Nonterminal: "S", Output: cfpq.OutputCount},
		{Nonterminal: "S"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.Query(context.Background(), g, gram, "S")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Result.Count != len(pairs) {
		t.Errorf("batch count %d, query returned %d pairs", res[0].Result.Count, len(pairs))
	}
	if !slices.Equal(res[1].Result.AllPairs(), pairs) {
		t.Errorf("batch pairs %v, query %v", res[1].Result.AllPairs(), pairs)
	}
	if empty, err := eng.QueryBatch(context.Background(), g, gram, nil); err != nil || empty != nil {
		t.Errorf("empty batch: got %v, %v", empty, err)
	}
}

func TestPreparedSourceFilteredReads(t *testing.T) {
	for _, be := range cfpq.Backends() {
		p := testPrepared(t, be)
		full := p.Relation(context.Background(), "S")
		if len(full) == 0 {
			t.Fatalf("%s: empty relation, test graph broken", be)
		}
		sources := []int{0, 2, 97} // 97 out of range: ignored
		inSrc := map[int]bool{0: true, 2: true}
		var want []cfpq.Pair
		for _, pr := range full {
			if inSrc[pr.I] {
				want = append(want, pr)
			}
		}
		if got := p.RelationFrom(context.Background(), "S", sources); !slices.Equal(got, want) {
			t.Errorf("%s: RelationFrom = %v, want %v", be, got, want)
		}
		if got := p.CountFrom(context.Background(), "S", sources); got != len(want) {
			t.Errorf("%s: CountFrom = %d, want %d", be, got, len(want))
		}
		var streamed []cfpq.Pair
		for pr := range p.PairsFrom(context.Background(), "S", sources) {
			streamed = append(streamed, pr)
		}
		if !slices.Equal(streamed, want) {
			t.Errorf("%s: PairsFrom = %v, want %v", be, streamed, want)
		}
		if got := p.RelationFrom(context.Background(), "Nope", sources); got != nil {
			t.Errorf("%s: unknown non-terminal RelationFrom = %v, want nil", be, got)
		}
	}
}

// TestPreparedPairsFromEarlyBreak checks the iterator stops cleanly when
// the consumer does.
func TestPreparedPairsFromEarlyBreak(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	count := 0
	for range p.PairsFrom(context.Background(), "S", []int{0, 1, 2, 3, 4}) {
		count++
		break
	}
	if count != 1 {
		t.Fatalf("early break: saw %d pairs", count)
	}
	// No lock is held after the break: a write must not deadlock.
	if _, err := p.AddEdges(context.Background(), cfpq.Edge{From: 0, Label: "a", To: 3}); err != nil {
		t.Fatal(err)
	}
}
