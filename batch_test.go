package cfpq_test

import (
	"context"
	"errors"
	"slices"
	"testing"

	"cfpq"
)

// testPrepared builds a small prepared handle over the chain
// 0 -a-> 1 -a-> 2 -b-> 3 -b-> 4 with S -> a S b | a b; the tests below
// compare batch answers against the handle's own single-query methods
// rather than assuming the relation.
func testPrepared(t *testing.T, be cfpq.Backend) *cfpq.Prepared {
	t.Helper()
	g := cfpq.NewGraph(5)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 4)
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	p, err := cfpq.NewEngine(be).Prepare(context.Background(), g, gram)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreparedQueryBatchMatchesSingleQueries(t *testing.T) {
	for _, be := range cfpq.Backends() {
		p := testPrepared(t, be)
		queries := []cfpq.BatchQuery{
			{Op: cfpq.BatchHas, Nonterminal: "S", From: 1, To: 3},
			{Op: cfpq.BatchHas, Nonterminal: "S", From: 0, To: 3},
			{Op: cfpq.BatchHas, Nonterminal: "S", From: -1, To: 99},
			{Op: cfpq.BatchCount, Nonterminal: "S"},
			{Op: cfpq.BatchRelation, Nonterminal: "S"},
			{Nonterminal: "S"}, // zero Op defaults to relation
			{Op: cfpq.BatchCountFrom, Nonterminal: "S", Sources: []int{0}},
			{Op: cfpq.BatchRelationFrom, Nonterminal: "S", Sources: []int{0, 1}},
		}
		res := p.QueryBatch(context.Background(), queries)
		if len(res) != len(queries) {
			t.Fatalf("%s: got %d results, want %d", be, len(res), len(queries))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: query %d: unexpected error %v", be, i, r.Err)
			}
		}
		if got, want := res[0].Has, p.Has("S", 1, 3); got != want {
			t.Errorf("%s: has(1,3) = %v, want %v", be, got, want)
		}
		if got, want := res[1].Has, p.Has("S", 0, 3); got != want {
			t.Errorf("%s: has(0,3) = %v, want %v", be, got, want)
		}
		if res[2].Has {
			t.Errorf("%s: out-of-range has answered true", be)
		}
		if got, want := res[3].Count, p.Count("S"); got != want {
			t.Errorf("%s: count = %d, want %d", be, got, want)
		}
		if !slices.Equal(res[4].Pairs, p.Relation("S")) {
			t.Errorf("%s: relation = %v, want %v", be, res[4].Pairs, p.Relation("S"))
		}
		if !slices.Equal(res[5].Pairs, p.Relation("S")) {
			t.Errorf("%s: default-op relation = %v, want %v", be, res[5].Pairs, p.Relation("S"))
		}
		if got, want := res[6].Count, p.CountFrom("S", []int{0}); got != want {
			t.Errorf("%s: count-from = %d, want %d", be, got, want)
		}
		if !slices.Equal(res[7].Pairs, p.RelationFrom("S", []int{0, 1})) {
			t.Errorf("%s: relation-from = %v, want %v", be, res[7].Pairs, p.RelationFrom("S", []int{0, 1}))
		}
	}
}

func TestQueryBatchPerQueryErrors(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	res := p.QueryBatch(context.Background(), []cfpq.BatchQuery{
		{Op: cfpq.BatchCount, Nonterminal: "Nope"},
		{Op: "frobnicate", Nonterminal: "S"},
		{Op: cfpq.BatchCount, Nonterminal: "S"},
	})
	if res[0].Err == nil {
		t.Error("unknown non-terminal: expected per-query error")
	}
	if res[1].Err == nil {
		t.Error("unknown op: expected per-query error")
	}
	if res[2].Err != nil {
		t.Errorf("valid query after bad ones failed: %v", res[2].Err)
	}
}

func TestQueryBatchCancelledContext(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := p.QueryBatch(ctx, []cfpq.BatchQuery{{Op: cfpq.BatchCount, Nonterminal: "S"}})
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Fatalf("cancelled batch: got %v, want context.Canceled", res[0].Err)
	}
}

func TestEngineQueryBatchOneShot(t *testing.T) {
	g := cfpq.NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	gram := cfpq.MustParseGrammar("S -> a S b | a b")
	eng := cfpq.NewEngine(cfpq.Sparse)
	res, err := eng.QueryBatch(context.Background(), g, gram, []cfpq.BatchQuery{
		{Op: cfpq.BatchCount, Nonterminal: "S"},
		{Op: cfpq.BatchRelation, Nonterminal: "S"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.Query(context.Background(), g, gram, "S")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Count != len(pairs) {
		t.Errorf("batch count %d, query returned %d pairs", res[0].Count, len(pairs))
	}
	if !slices.Equal(res[1].Pairs, pairs) {
		t.Errorf("batch relation %v, query %v", res[1].Pairs, pairs)
	}
	if empty, err := eng.QueryBatch(context.Background(), g, gram, nil); err != nil || empty != nil {
		t.Errorf("empty batch: got %v, %v", empty, err)
	}
}

func TestPreparedSourceFilteredReads(t *testing.T) {
	for _, be := range cfpq.Backends() {
		p := testPrepared(t, be)
		full := p.Relation("S")
		if len(full) == 0 {
			t.Fatalf("%s: empty relation, test graph broken", be)
		}
		sources := []int{0, 2, 97} // 97 out of range: ignored
		inSrc := map[int]bool{0: true, 2: true}
		var want []cfpq.Pair
		for _, pr := range full {
			if inSrc[pr.I] {
				want = append(want, pr)
			}
		}
		if got := p.RelationFrom("S", sources); !slices.Equal(got, want) {
			t.Errorf("%s: RelationFrom = %v, want %v", be, got, want)
		}
		if got := p.CountFrom("S", sources); got != len(want) {
			t.Errorf("%s: CountFrom = %d, want %d", be, got, len(want))
		}
		var streamed []cfpq.Pair
		for pr := range p.PairsFrom("S", sources) {
			streamed = append(streamed, pr)
		}
		if !slices.Equal(streamed, want) {
			t.Errorf("%s: PairsFrom = %v, want %v", be, streamed, want)
		}
		if got := p.RelationFrom("Nope", sources); got != nil {
			t.Errorf("%s: unknown non-terminal RelationFrom = %v, want nil", be, got)
		}
	}
}

// TestPreparedPairsFromEarlyBreak checks the iterator releases cleanly when
// the consumer stops early.
func TestPreparedPairsFromEarlyBreak(t *testing.T) {
	p := testPrepared(t, cfpq.Sparse)
	count := 0
	for range p.PairsFrom("S", []int{0, 1, 2, 3, 4}) {
		count++
		break
	}
	if count != 1 {
		t.Fatalf("early break: saw %d pairs", count)
	}
	// The lock must have been released: a write must not deadlock.
	if _, err := p.AddEdges(context.Background(), cfpq.Edge{From: 0, Label: "a", To: 3}); err != nil {
		t.Fatal(err)
	}
}
