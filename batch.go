package cfpq

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult is the answer to one Request of a batch: the Result when the
// request was answered, or the per-request error — one malformed request
// does not fail its batch.
type BatchResult struct {
	// Result is the request's answer; nil when Err is set.
	Result *Result
	// Err reports a per-request failure (invalid request, unknown
	// non-terminal, or the batch context firing).
	Err error
}

// batchWorkers sizes the worker pool fanning a batch out: one worker per
// processor, never more than there are requests.
func batchWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// QueryBatch answers every Request of the batch from the handle's cached
// index under ONE read-lock acquisition, fanning the work out over a
// shared pool of one worker per processor. All answers come from the same
// index state: an AddEdges racing the batch is either fully visible to
// every answer or to none, which per-request locking cannot guarantee.
// Each request is planned like Prepared.Do plans it (the cached-read
// strategy, with the same request restrictions), and every Result streams
// a snapshot materialised during the batch, so answers stay consistent
// however late they are consumed.
//
// The context is checked between requests; once it fires, the remaining
// results carry ctx.Err() as their Err.
func (p *Prepared) QueryBatch(ctx context.Context, reqs []Request) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(int64(len(reqs)))
	results := make([]BatchResult, len(reqs))
	answer := func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = BatchResult{Err: err}
			return
		}
		if err := p.checkRequest(reqs[i]); err != nil {
			results[i] = BatchResult{Err: err}
			return
		}
		res, err := p.doLocked(ctx, reqs[i])
		results[i] = BatchResult{Result: res, Err: err}
	}
	workers := batchWorkers(len(reqs))
	if workers == 1 {
		for i := range reqs {
			answer(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				answer(i)
			}
		}()
	}
	// The workers answer from the locked snapshot and hold no lock of
	// their own, so the wait is bounded by this batch's own work and
	// cannot deadlock; writers queue behind one batch, by design.
	//lint:allow cfpqlint/lockscope waiting on own read-only workers under the read lock keeps the batch a point-in-time snapshot
	wg.Wait()
	return results
}

// QueryBatch evaluates a batch of Requests sharing one (graph, grammar)
// pair: the closure is built exactly once, then every request is answered
// from it by the shared worker pool. The requests must not carry their own
// Graph or Grammar — the batch's pair is the one queried. This is the
// one-shot form; a serving layer holding a Prepared handle should call
// Prepared.QueryBatch, which reuses the cached index instead of building
// one per batch. The graph is only read.
func (e *Engine) QueryBatch(ctx context.Context, g *Graph, gram *Grammar, reqs []Request) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	p, err := e.Prepare(ctx, g, gram)
	if err != nil {
		return nil, err
	}
	return p.QueryBatch(ctx, reqs), nil
}
