package cfpq

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchOp selects what one BatchQuery computes.
type BatchOp string

// The batch operations. The *From variants restrict the relation to pairs
// whose first component is in the query's source set.
const (
	BatchHas          BatchOp = "has"
	BatchCount        BatchOp = "count"
	BatchRelation     BatchOp = "relation"
	BatchCountFrom    BatchOp = "count-from"
	BatchRelationFrom BatchOp = "relation-from"
)

// BatchQuery is one query of a batch evaluated against a single closure
// index — the request shape of QueryBatch, which coalesces any number of
// queries sharing a (graph, grammar) pair into one index build.
type BatchQuery struct {
	// Op selects the computation; the zero value means BatchRelation.
	Op BatchOp `json:"op,omitempty"`
	// Nonterminal names the queried relation.
	Nonterminal string `json:"nonterminal"`
	// From, To address the pair tested by BatchHas.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Sources restricts the *From operations to rows in this set.
	Sources []int `json:"sources,omitempty"`
}

// BatchResult is the answer to one BatchQuery. Exactly the fields the
// query's Op produces are meaningful; Err is per-query, so one malformed
// query does not fail its batch.
type BatchResult struct {
	// Has answers BatchHas.
	Has bool `json:"has,omitempty"`
	// Count answers BatchCount and BatchCountFrom, and carries len(Pairs)
	// for the relation operations.
	Count int `json:"count"`
	// Pairs answers BatchRelation and BatchRelationFrom.
	Pairs []Pair `json:"pairs,omitempty"`
	// Err reports a per-query failure (unknown non-terminal or operation).
	Err error `json:"-"`
}

// batchWorkers sizes the worker pool fanning a batch out: one worker per
// processor, never more than there are queries.
func batchWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// QueryBatch answers every query of the batch from the handle's cached
// index under ONE read-lock acquisition, fanning the work out over a
// shared pool of one worker per processor. All answers come from the same
// index state: an AddEdges racing the batch is either fully visible to
// every answer or to none, which per-query locking cannot guarantee.
//
// The context is checked between queries; once it fires, the remaining
// results carry ctx.Err() as their Err.
func (p *Prepared) QueryBatch(ctx context.Context, queries []BatchQuery) []BatchResult {
	if len(queries) == 0 {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.queries.Add(int64(len(queries)))
	results := make([]BatchResult, len(queries))
	workers := batchWorkers(len(queries))
	if workers == 1 {
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				results[i] = BatchResult{Err: err}
				continue
			}
			results[i] = p.answerLocked(q)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				results[i] = p.answerLocked(queries[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// answerLocked answers one query; callers hold p.mu (read side suffices:
// only the index is consulted).
func (p *Prepared) answerLocked(query BatchQuery) BatchResult {
	nt := query.Nonterminal
	if _, ok := p.cnf.Index(nt); !ok {
		return BatchResult{Err: fmt.Errorf("cfpq: unknown non-terminal %q", nt)}
	}
	op := query.Op
	if op == "" {
		op = BatchRelation
	}
	switch op {
	case BatchHas:
		i, j := query.From, query.To
		if i < 0 || j < 0 || i >= p.ix.Nodes() || j >= p.ix.Nodes() {
			return BatchResult{Has: false}
		}
		return BatchResult{Has: p.ix.Has(nt, i, j)}
	case BatchCount:
		return BatchResult{Count: p.ix.Count(nt)}
	case BatchRelation:
		pairs := p.ix.Relation(nt)
		return BatchResult{Count: len(pairs), Pairs: pairs}
	case BatchCountFrom:
		return BatchResult{Count: p.countFromLocked(nt, query.Sources)}
	case BatchRelationFrom:
		pairs := p.relationFromLocked(nt, query.Sources)
		return BatchResult{Count: len(pairs), Pairs: pairs}
	default:
		return BatchResult{Err: fmt.Errorf("cfpq: unknown batch op %q", op)}
	}
}

// QueryBatch evaluates a batch of queries sharing one (graph, grammar)
// pair: the closure is built exactly once, then every query is answered
// from it by the shared worker pool. This is the one-shot form; a serving
// layer holding a Prepared handle should call Prepared.QueryBatch, which
// reuses the cached index instead of building one per batch. The graph is
// only read.
func (e *Engine) QueryBatch(ctx context.Context, g *Graph, gram *Grammar, queries []BatchQuery) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	p, err := e.Prepare(ctx, g, gram)
	if err != nil {
		return nil, err
	}
	return p.QueryBatch(ctx, queries), nil
}
