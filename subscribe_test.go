package cfpq_test

// Tests of the live-query surface: Prepared.Subscribe push batches are the
// exact newly-derived pairs of each AddEdges (the acceptance property — a
// full before/after diff is computed here only as the test oracle; the
// push path itself never diffs), exactly-once delivery across a cancelled
// patch and its repairing rebuild, restriction filtering, the
// drop-with-resync slow-consumer policy, resume (SubscribeFrom), teardown,
// request validation, and a -race stress of subscribers against writers.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func pairSet(pairs []cfpq.Pair) map[cfpq.Pair]bool {
	s := make(map[cfpq.Pair]bool, len(pairs))
	for _, p := range pairs {
		s[p] = true
	}
	return s
}

// diffPairs returns after − before as a set.
func diffPairs(before, after []cfpq.Pair) map[cfpq.Pair]bool {
	old := pairSet(before)
	out := map[cfpq.Pair]bool{}
	for _, p := range after {
		if !old[p] {
			out[p] = true
		}
	}
	return out
}

// tryRecv drains one batch without blocking — publish runs synchronously
// inside AddEdges, so anything published is already buffered.
func tryRecv(ch <-chan cfpq.PairBatch) (cfpq.PairBatch, bool) {
	select {
	case b, ok := <-ch:
		return b, ok
	default:
		return cfpq.PairBatch{}, false
	}
}

// recvClosed waits (briefly) for the channel to close, skipping any
// still-buffered batches; teardown via context.AfterFunc is asynchronous.
func recvClosed(t *testing.T, ch <-chan cfpq.PairBatch) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel not closed")
		}
	}
}

// TestSubscribeDeltaMatchesDiffProperty is the live-query acceptance
// property: on random grammars and random graphs, for every backend, each
// AddEdges pushes to every subscriber exactly the pairs by which the full
// relation grew — verified against a before/after diff of the materialised
// relation, for every non-terminal, with strictly increasing sequence
// numbers and no Resync markers (the consumer keeps up).
func TestSubscribeDeltaMatchesDiffProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(83))
	cfg := grammar.DefaultRandomConfig()
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for _, be := range cfpq.Backends() {
		eng := cfpq.NewEngine(be)
		for trial := 0; trial < trials; trial++ {
			gram := grammar.RandomGrammar(rng, cfg)
			labels := gram.Terminals()
			if len(labels) == 0 {
				continue // ε-only grammar: no edges to stream
			}
			n := 4 + rng.Intn(10)
			full := graph.Random(rng, n, 2+rng.Intn(3*n), labels)
			edges := full.Edges()
			split := rng.Intn(len(edges))
			prefix := graph.New(full.Nodes())
			for _, ed := range edges[:split] {
				prefix.AddEdge(ed.From, ed.Label, ed.To)
			}
			p, err := eng.Prepare(ctx, prefix, gram)
			if err != nil {
				continue // e.g. a grammar the CNF conversion rejects
			}

			// One unrestricted subscription per queryable non-terminal.
			subs := map[string]*cfpq.Subscription{}
			before := map[string][]cfpq.Pair{}
			for _, nt := range gram.Nonterminals() {
				s, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: nt})
				if err != nil {
					continue // a non-terminal the CNF conversion elided
				}
				defer s.Close()
				subs[nt] = s
				before[nt] = p.Relation(context.Background(), nt)
			}

			lastSeq := uint64(0)
			rest := edges[split:]
			for len(rest) > 0 {
				k := 1 + rng.Intn(3)
				if k > len(rest) {
					k = len(rest)
				}
				batch, tail := rest[:k], rest[k:]
				rest = tail
				info, err := p.AddEdges(ctx, batch...)
				if err != nil {
					t.Fatalf("%s trial %d: AddEdges: %v", be, trial, err)
				}
				for nt, s := range subs {
					after := p.Relation(context.Background(), nt)
					want := diffPairs(before[nt], after)
					before[nt] = after

					// The exposed per-update delta is exactly the growth.
					var fromDelta []cfpq.Pair
					if info.Delta != nil {
						fromDelta = info.Delta.Pairs(nt)
					}
					if got := pairSet(fromDelta); len(got) != len(want) || !equalSets(got, want) {
						t.Fatalf("%s trial %d nt=%s: UpdateInfo.Delta = %v, diff oracle = %v\ngrammar:\n%s",
							be, trial, nt, fromDelta, setList(want), gram)
					}

					// And so is the pushed batch (at most one per update).
					b, ok := tryRecv(s.Updates())
					if !ok {
						if len(want) != 0 {
							t.Fatalf("%s trial %d nt=%s: no batch pushed, diff oracle = %v",
								be, trial, nt, setList(want))
						}
						continue
					}
					if b.Resync {
						t.Fatalf("%s trial %d nt=%s: unexpected Resync on a kept-up consumer", be, trial, nt)
					}
					if b.Seq < lastSeq {
						t.Fatalf("%s trial %d nt=%s: sequence went backwards: %d after %d", be, trial, nt, b.Seq, lastSeq)
					}
					if got := pairSet(b.Pairs); !equalSets(got, want) {
						t.Fatalf("%s trial %d nt=%s: pushed %v, diff oracle = %v", be, trial, nt, b.Pairs, setList(want))
					}
					if b.Seq > lastSeq {
						lastSeq = b.Seq
					}
					if extra, ok := tryRecv(s.Updates()); ok {
						t.Fatalf("%s trial %d nt=%s: second batch %v for one update", be, trial, nt, extra)
					}
				}
			}
		}
	}
}

func equalSets(a, b map[cfpq.Pair]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func setList(s map[cfpq.Pair]bool) []cfpq.Pair {
	out := make([]cfpq.Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	return out
}

// TestSubscribeCancelledRepairExactlyOnce: a cancelled AddEdges publishes
// the pairs that did land before cancellation; the repairing rebuild
// publishes exactly the rest (its synthesized new-minus-old delta). Across
// the two batches every subscriber sees each newly derived pair exactly
// once, on all four backends.
func TestSubscribeCancelledRepairExactlyOnce(t *testing.T) {
	text := "S -> a S b | a b"
	for _, be := range cfpq.Backends() {
		t.Run(be.String(), func(t *testing.T) {
			g := cfpq.NewGraph(0)
			for i := 0; i < 6; i++ {
				g.AddEdge(i, "a", i+1)
			}
			for i := 6; i < 11; i++ {
				g.AddEdge(i, "b", i+1)
			}
			eng := cfpq.NewEngine(be)
			p, err := eng.Prepare(context.Background(), g.Clone(), cfpq.MustParseGrammar(text))
			if err != nil {
				t.Fatal(err)
			}
			sub, err := p.Subscribe(context.Background(), cfpq.Request{Nonterminal: "S"})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			before := p.Relation(context.Background(), "S")

			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := p.AddEdges(cancelled, cfpq.Edge{From: 11, Label: "b", To: 12}); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Repair with a successful (empty) update.
			if _, err := p.AddEdges(context.Background()); err != nil {
				t.Fatal(err)
			}

			g.AddEdge(11, "b", 12)
			cnf, _ := cfpq.ToCNF(cfpq.MustParseGrammar(text))
			cold, _, err := eng.Evaluate(context.Background(), g, cnf)
			if err != nil {
				t.Fatal(err)
			}
			want := diffPairs(before, cold.Relation("S"))

			got := map[cfpq.Pair]bool{}
			for {
				b, ok := tryRecv(sub.Updates())
				if !ok {
					break
				}
				for _, pr := range b.Pairs {
					if got[pr] {
						t.Fatalf("pair %v delivered twice across cancel+repair", pr)
					}
					got[pr] = true
				}
			}
			if !equalSets(got, want) {
				t.Fatalf("cancel+repair delivered %v, want exactly %v", setList(got), setList(want))
			}
		})
	}
}

// TestSubscribeRestrictionFiltering: Sources/Targets restrict the streamed
// pairs exactly as they would a query.
func TestSubscribeRestrictionFiltering(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 3)
	p, err := cfpq.NewEngine(cfpq.Sparse).Prepare(ctx, g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	restricted, err := p.Subscribe(ctx, cfpq.Request{
		Nonterminal: "S", Sources: []int{0}, Targets: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restricted.Close()

	if _, err := p.AddEdges(ctx, cfpq.Edge{From: 3, Label: "a", To: 4}); err != nil {
		t.Fatal(err)
	}
	b, ok := tryRecv(all.Updates())
	if !ok {
		t.Fatal("unrestricted subscription got no batch")
	}
	// New edge a(3,4) newly derives S(i,4) for i in 0..3.
	wantAll := pairSet([]cfpq.Pair{{I: 0, J: 4}, {I: 1, J: 4}, {I: 2, J: 4}, {I: 3, J: 4}})
	if got := pairSet(b.Pairs); !equalSets(got, wantAll) {
		t.Fatalf("unrestricted batch %v, want %v", b.Pairs, setList(wantAll))
	}
	rb, ok := tryRecv(restricted.Updates())
	if !ok {
		t.Fatal("restricted subscription got no batch")
	}
	if len(rb.Pairs) != 1 || rb.Pairs[0] != (cfpq.Pair{I: 0, J: 4}) {
		t.Fatalf("restricted batch %v, want [(0,4)]", rb.Pairs)
	}
	// An update producing only out-of-restriction pairs pushes nothing.
	if _, err := p.AddEdges(ctx, cfpq.Edge{From: 4, Label: "a", To: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tryRecv(all.Updates()); !ok {
		t.Fatal("unrestricted subscription missed the second update")
	}
	if extra, ok := tryRecv(restricted.Updates()); ok {
		// S(0,5) is in range for source 0 but target 5 ≠ 4 — filtered out.
		t.Fatalf("restricted subscription got %v for out-of-restriction update", extra)
	}
}

// TestSubscribeSlowConsumerDropResync pins the documented slow-consumer
// policy: publishing never blocks the writer; once the bounded buffer
// fills, batches are dropped, Dropped() counts them, and the next batch
// that does fit carries Resync so the gap is visible in-band.
func TestSubscribeSlowConsumerDropResync(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	p, err := cfpq.NewEngine(cfpq.Sparse).Prepare(ctx, g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// 70 delta-producing updates with nothing consuming: the first 64 fill
	// the buffer, the last 6 drop.
	const updates = 70
	for i := 1; i <= updates; i++ {
		if _, err := p.AddEdges(ctx, cfpq.Edge{From: i, Label: "a", To: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	// Drain the buffered 64; none of them carries Resync (they were all
	// delivered in order before the overflow).
	buffered := 0
	for {
		b, ok := tryRecv(sub.Updates())
		if !ok {
			break
		}
		buffered++
		if b.Resync {
			t.Fatalf("buffered batch %d carries Resync", b.Seq)
		}
	}
	if buffered != 64 {
		t.Fatalf("drained %d buffered batches, want 64", buffered)
	}
	// The next batch that fits surfaces the gap.
	if _, err := p.AddEdges(ctx, cfpq.Edge{From: updates + 1, Label: "a", To: updates + 2}); err != nil {
		t.Fatal(err)
	}
	b, ok := tryRecv(sub.Updates())
	if !ok {
		t.Fatal("no batch after draining")
	}
	if !b.Resync {
		t.Fatal("post-drop batch does not carry Resync")
	}
	if len(b.Pairs) == 0 {
		t.Error("resync-carrying batch lost its own pairs")
	}
}

// TestSubscribeFromResume: retained updates past the given sequence number
// replay on resume; a gap wider than the retained window (or a bogus
// future sequence) yields a single Resync marker instead.
func TestSubscribeFromResume(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	p, err := cfpq.NewEngine(cfpq.Sparse).Prepare(ctx, g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}
	live, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	var seen []cfpq.PairBatch
	for i := 1; i <= 5; i++ {
		if _, err := p.AddEdges(ctx, cfpq.Edge{From: i, Label: "a", To: i + 1}); err != nil {
			t.Fatal(err)
		}
		b, ok := tryRecv(live.Updates())
		if !ok {
			t.Fatalf("update %d pushed no batch", i)
		}
		seen = append(seen, b)
	}
	live.Close()

	// Resume after the 2nd update: batches 3..5 replay, verbatim.
	resumed, err := p.SubscribeFrom(ctx, cfpq.Request{Nonterminal: "S"}, seen[1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for _, want := range seen[2:] {
		b, ok := tryRecv(resumed.Updates())
		if !ok {
			t.Fatalf("replay missing batch %d", want.Seq)
		}
		if b.Resync || b.Seq != want.Seq || !equalSets(pairSet(b.Pairs), pairSet(want.Pairs)) {
			t.Fatalf("replayed %+v, want %+v", b, want)
		}
	}
	if extra, ok := tryRecv(resumed.Updates()); ok {
		t.Fatalf("replay over-delivered: %+v", extra)
	}
	// And the resumed subscription continues live.
	if _, err := p.AddEdges(ctx, cfpq.Edge{From: 6, Label: "a", To: 7}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tryRecv(resumed.Updates()); !ok {
		t.Fatal("resumed subscription not live")
	}

	// A sequence number the hub never issued: one Resync marker, no replay.
	gap, err := p.SubscribeFrom(ctx, cfpq.Request{Nonterminal: "S"}, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer gap.Close()
	b, ok := tryRecv(gap.Updates())
	if !ok {
		t.Fatal("gap resume produced no marker")
	}
	if !b.Resync || len(b.Pairs) != 0 {
		t.Fatalf("gap resume produced %+v, want an empty Resync marker", b)
	}
	if extra, ok := tryRecv(gap.Updates()); ok {
		t.Fatalf("gap resume replayed %+v", extra)
	}
}

// TestSubscribeTeardown: ctx cancellation and Close both end the
// subscription (closing Updates); Prepared.Close ends every subscription
// and rejects future ones. All are idempotent.
func TestSubscribeTeardown(t *testing.T) {
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	p, err := cfpq.NewEngine(cfpq.Sparse).Prepare(context.Background(), g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	byCtx, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	recvClosed(t, byCtx.Updates())
	byCtx.Close() // idempotent after ctx teardown

	byClose, err := p.Subscribe(context.Background(), cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	byClose.Close()
	byClose.Close()
	recvClosed(t, byClose.Updates())

	survivor, err := p.Subscribe(context.Background(), cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	recvClosed(t, survivor.Updates())
	p.Close() // idempotent
	if _, err := p.Subscribe(context.Background(), cfpq.Request{Nonterminal: "S"}); err == nil {
		t.Fatal("Subscribe succeeded on a closed handle")
	}
	// Queries and updates still work on a closed handle; publishes no-op.
	if _, err := p.AddEdges(context.Background(), cfpq.Edge{From: 1, Label: "a", To: 2}); err != nil {
		t.Fatal(err)
	}
	if !p.Has(context.Background(), "S", 0, 2) {
		t.Fatal("closed handle stopped answering")
	}
}

// TestSubscribeValidation pins the request shapes a subscription rejects,
// as structured *RequestError values, plus the unknown-non-terminal error.
func TestSubscribeValidation(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	p, err := cfpq.NewEngine(cfpq.Sparse).Prepare(ctx, g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		req   cfpq.Request
		field string
	}{
		{"count output", cfpq.Request{Nonterminal: "S", Output: cfpq.OutputCount}, "output"},
		{"exists output", cfpq.Request{Nonterminal: "S", Output: cfpq.OutputExists, Sources: []int{0}, Targets: []int{1}}, "output"},
		{"limit", cfpq.Request{Nonterminal: "S", Limit: 5}, "limit"},
		{"max path length", cfpq.Request{Nonterminal: "S", MaxPathLength: 3}, "max_path_length"},
		{"own grammar", cfpq.Request{Nonterminal: "S", Grammar: cfpq.MustParseGrammar("S -> a")}, "grammar"},
	}
	for _, tc := range cases {
		_, err := p.Subscribe(ctx, tc.req)
		var re *cfpq.RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want *RequestError", tc.name, err)
			continue
		}
		if re.Field != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, re.Field, tc.field)
		}
	}
	if _, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "Nope"}); err == nil {
		t.Error("unknown non-terminal accepted")
	}
}

// TestLimitedCountRejectedOnLibrarySurface is the satellite pin for the
// count+limit fix at the Go API layer: a Limit on OutputCount is a
// structured validation error (counts are exact; they honour no limit), on
// both Engine.Do and Prepared.Do.
func TestLimitedCountRejectedOnLibrarySurface(t *testing.T) {
	ctx := context.Background()
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "a", 1)
	gram := cfpq.MustParseGrammar("S -> a | a S")
	eng := cfpq.NewEngine(cfpq.Sparse)

	_, err := eng.Do(ctx, cfpq.Request{
		Graph: g, Grammar: gram, Nonterminal: "S", Output: cfpq.OutputCount, Limit: 3,
	})
	var re *cfpq.RequestError
	if !errors.As(err, &re) || re.Field != "limit" {
		t.Fatalf("Engine.Do err = %v, want *RequestError on field \"limit\"", err)
	}
	p, errPrep := eng.Prepare(ctx, g, gram)
	if errPrep != nil {
		t.Fatal(errPrep)
	}
	_, err = p.Do(ctx, cfpq.Request{Nonterminal: "S", Output: cfpq.OutputCount, Limit: 3})
	if !errors.As(err, &re) || re.Field != "limit" {
		t.Fatalf("Prepared.Do err = %v, want *RequestError on field \"limit\"", err)
	}
}

// TestSubscribeRaceUpdates races subscribers (consuming, churning, and
// closing) against a writer streaming edges, snapshot serialisation, and
// queries; run under -race. Afterwards the union of one consumer's batches
// must equal the relation growth — concurrency loses nothing.
func TestSubscribeRaceUpdates(t *testing.T) {
	ctx := context.Background()
	const k = 8
	const extra = 24
	g := cfpq.NewGraph(0)
	for i := 0; i < k; i++ {
		g.AddEdge(i, "a", i+1)
	}
	p, err := cfpq.NewEngine(cfpq.SparseParallel(2)).Prepare(ctx, g, cfpq.MustParseGrammar("S -> a | a S"))
	if err != nil {
		t.Fatal(err)
	}
	before := p.Relation(context.Background(), "S")
	sub, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	var mu sync.Mutex
	received := map[cfpq.Pair]bool{}
	errs := make(chan error, 8)
	start := make(chan struct{})

	writers.Add(1)
	go func() { // writer
		defer writers.Done()
		<-start
		for i := 0; i < extra; i++ {
			if _, err := p.AddEdges(ctx, cfpq.Edge{From: k + i, Label: "a", To: k + i + 1}); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	consumerDone := make(chan struct{})
	go func() { // the audited consumer
		defer close(consumerDone)
		<-start
		for b := range sub.Updates() {
			mu.Lock()
			for _, pr := range b.Pairs {
				if received[pr] {
					errs <- fmt.Errorf("pair %v delivered twice", pr)
				}
				received[pr] = true
			}
			mu.Unlock()
		}
	}()
	writers.Add(1)
	go func() { // subscription churn
		defer writers.Done()
		<-start
		for i := 0; i < 20; i++ {
			s, err := p.Subscribe(ctx, cfpq.Request{Nonterminal: "S", Sources: []int{0}})
			if err != nil {
				errs <- fmt.Errorf("churn: %w", err)
				return
			}
			tryRecv(s.Updates())
			s.Close()
		}
	}()
	writers.Add(1)
	go func() { // readers: queries and snapshot serialisation
		defer writers.Done()
		<-start
		for i := 0; i < 20; i++ {
			p.Count(context.Background(), "S")
			if err := p.WriteIndex(io.Discard); err != nil {
				errs <- fmt.Errorf("WriteIndex: %w", err)
				return
			}
		}
	}()

	close(start)
	// Let the writer and helpers finish, then end the consumer's stream;
	// the consumer still drains every batch buffered before Close.
	writers.Wait()
	sub.Close()
	select {
	case <-consumerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer did not finish")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("audited consumer dropped %d batches", d)
	}
	want := diffPairs(before, p.Relation(context.Background(), "S"))
	mu.Lock()
	defer mu.Unlock()
	if !equalSets(received, want) {
		t.Fatalf("consumer union has %d pairs, relation grew by %d", len(received), len(want))
	}
}
