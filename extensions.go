package cfpq

import (
	"io"

	"cfpq/internal/conjunctive"
	"cfpq/internal/core"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
	"cfpq/internal/rpq"
)

// This file exposes the extensions built on the paper's §7 research
// directions: regular path queries by reduction to CFPQ, conjunctive
// grammars (upper approximation), minimal-length single-path semantics,
// and dynamic (incremental) query maintenance.

// RPQ evaluates a regular path query — the expression syntax is
//
//	subClassOf_r* type (a | b)+ c?
//
// — by compiling the expression to an NFA, the NFA to a right-linear
// grammar, and evaluating that grammar with the matrix CFPQ engine.
func RPQ(g *Graph, expr string, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	be := matrix.Backend(nil)
	if len(c.engineOpts) > 0 {
		// Re-resolve the backend choice through a scratch engine: the
		// options API stores backend selection as engine options.
		be = core.NewEngine(c.engineOpts...).Backend()
	}
	return rpq.EvaluateString(g, expr, rpq.Options{
		IncludeEmptyPaths: c.emptyPaths,
		Backend:           be,
	})
}

// ConjunctiveGrammar is a grammar with conjunctive productions
// (`A -> B C & D E`); see ParseConjunctive.
type ConjunctiveGrammar = conjunctive.Grammar

// ParseConjunctive parses a conjunctive grammar: the usual text format
// plus `&` separating conjuncts that must all derive the same fragment:
//
//	S -> A B & D C
//	A -> a A | a
func ParseConjunctive(text string) (*ConjunctiveGrammar, error) {
	return conjunctive.Parse(text)
}

// QueryConjunctive evaluates a conjunctive path query. Per the paper's
// Section 7 hypothesis (verified by this package's tests), the result is
// an upper approximation of the single-path relation on cyclic graphs and
// exact on linear inputs.
func QueryConjunctive(g *Graph, cg *ConjunctiveGrammar, start string, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	be := matrix.Backend(nil)
	if len(c.engineOpts) > 0 {
		be = core.NewEngine(c.engineOpts...).Backend()
	}
	res, err := conjunctive.Evaluate(g, cg, be)
	if err != nil {
		return nil, err
	}
	return res.Relation(start), nil
}

// ShortestPath is SinglePath with minimal witness lengths: the recorded
// length (and the extracted path) of every pair is the shortest possible,
// as in Hellings' single-path algorithm.
func ShortestPath(g *Graph, cnf *CNF) *PathIndex {
	return core.NewShortestPathIndex(g, cnf)
}

// Update incorporates newly added edges into an evaluated Index without
// recomputing the closure (dynamic CFPQ): only the consequences of the new
// edges are propagated. The edges must stay within the index's node range.
func Update(ix *Index, edges ...Edge) Stats {
	e := core.NewEngine(core.WithBackend(backendOf(ix)))
	return e.Update(ix, edges...)
}

// backendOf recovers a compatible backend for the index's matrices so
// Update allocates frontier matrices of the same representation.
func backendOf(ix *Index) matrix.Backend {
	for _, nt := range ix.CNF().Names {
		switch ix.Matrix(nt).(type) {
		case *matrix.DenseMatrix:
			return matrix.Dense()
		case *matrix.SparseMatrix:
			return matrix.Sparse()
		}
	}
	return matrix.Sparse()
}

// ReverseGraph returns the graph with all edges flipped; together with
// grammar reversal it transposes every relation (a structural identity the
// test suite exploits).
func ReverseGraph(g *Graph) *Graph { return graph.Reverse(g) }

// SaveIndex serialises an evaluated index so later sessions can query it
// without re-running the closure. Pair it with the exact grammar at load
// time.
func SaveIndex(w io.Writer, ix *Index) error {
	_, err := ix.WriteTo(w)
	return err
}

// LoadIndex reads an index previously written by SaveIndex. The CNF must
// be the grammar the index was computed for.
func LoadIndex(r io.Reader, cnf *CNF, opts ...Option) (*Index, error) {
	c := buildConfig(opts)
	be := matrix.Backend(nil)
	if len(c.engineOpts) > 0 {
		be = core.NewEngine(c.engineOpts...).Backend()
	}
	return core.ReadIndex(r, cnf, be)
}
