package cfpq

import (
	"context"
	"io"

	"cfpq/internal/conjunctive"
	"cfpq/internal/graph"
)

// This file exposes the extensions built on the paper's §7 research
// directions — regular path queries by reduction to CFPQ, conjunctive
// grammars (upper approximation), minimal-length single-path semantics,
// and dynamic (incremental) query maintenance — as deprecated one-shot
// wrappers over Engine, plus the grammar/graph utilities that need no
// engine at all.
//
// Each wrapper runs on a fresh default engine, so engine-level
// enforcement such as WithMemoryBudget never applies here, and the
// error-dropping ones (ShortestPath, Update) could not report a typed
// rejection anyway. Anything that needs enforcement — memory budgets
// above all — must go through the Engine methods.

// ConjunctiveGrammar is a grammar with conjunctive productions
// (`A -> B C & D E`); see ParseConjunctive.
type ConjunctiveGrammar = conjunctive.Grammar

// ParseConjunctive parses a conjunctive grammar: the usual text format
// plus `&` separating conjuncts that must all derive the same fragment:
//
//	S -> A B & D C
//	A -> a A | a
func ParseConjunctive(text string) (*ConjunctiveGrammar, error) {
	return conjunctive.Parse(text)
}

// RPQ evaluates a regular path query (see Engine.RPQ for the syntax).
//
// Deprecated: use NewEngine(backend).Do with Request{Graph: g, Expr:
// expr} (or the RPQ sugar) — the planner then also serves restricted
// forms via the frontier strategies.
func RPQ(ctx context.Context, g *Graph, expr string, opts ...Option) ([]Pair, error) {
	return NewEngine(Sparse).RPQ(ctx, g, expr, opts...)
}

// QueryConjunctive evaluates a conjunctive path query (see
// Engine.QueryConjunctive).
//
// Deprecated: use NewEngine(backend).Do with Request{Graph: g,
// Conjunctive: cg, Nonterminal: start} (or the QueryConjunctive sugar).
func QueryConjunctive(ctx context.Context, g *Graph, cg *ConjunctiveGrammar, start string, opts ...Option) ([]Pair, error) {
	return NewEngine(Sparse).QueryConjunctive(ctx, g, cg, start, opts...)
}

// ShortestPath is SinglePath with minimal witness lengths; see
// Engine.ShortestPath. A cancelled ctx returns nil.
//
// Deprecated: use NewEngine(backend).ShortestPath, which reports the
// cancellation error this wrapper drops.
func ShortestPath(ctx context.Context, g *Graph, cnf *CNF) *PathIndex {
	px, _ := NewEngine(Sparse).ShortestPath(ctx, g, cnf)
	return px
}

// Update incorporates newly added edges into an evaluated Index without
// recomputing the closure (dynamic CFPQ). The index remembers the backend
// it was built with, so updates keep the original kernel — parallel
// included — and edges that grow the node set transparently resize the
// index in place.
//
// Deprecated: use NewEngine(backend).Update, which reports the
// cancellation error this wrapper drops, or a Prepared handle, which also
// keeps the graph in sync.
func Update(ctx context.Context, ix *Index, edges ...Edge) Stats {
	stats, _ := NewEngine(Sparse).Update(ctx, ix, edges...)
	return stats
}

// ReverseGraph returns the graph with all edges flipped; together with
// grammar reversal it transposes every relation (a structural identity the
// test suite exploits).
func ReverseGraph(g *Graph) *Graph { return graph.Reverse(g) }

// SaveIndex serialises an evaluated index so later sessions can query it
// without re-running the closure. Pair it with the exact grammar at load
// time.
func SaveIndex(w io.Writer, ix *Index) error {
	_, err := ix.WriteTo(w)
	return err
}

// LoadIndex reads an index previously written by SaveIndex. The CNF must
// be the grammar the index was computed for.
//
// Deprecated: use NewEngine(backend).LoadIndex.
func LoadIndex(r io.Reader, cnf *CNF, opts ...Option) (*Index, error) {
	cfg := buildConfig(opts)
	e := NewEngine(Sparse)
	if cfg.backend != nil {
		e = NewEngine(*cfg.backend)
	}
	return e.LoadIndex(r, cnf)
}
