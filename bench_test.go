// Package cfpq's top-level benchmarks regenerate the paper's evaluation
// with the standard Go benchmarking harness: one benchmark tree per table,
// one sub-benchmark per (ontology, implementation) cell.
//
//	go test -bench BenchmarkTable1 -benchmem        # Table 1 (Query 1)
//	go test -bench BenchmarkTable2 -benchmem        # Table 2 (Query 2)
//
// For the formatted tables in the paper's layout (with #results columns and
// result-agreement checking), run ./cmd/cfpq-bench instead.
//
// This file is an external test package: internal/bench evaluates through
// the public cfpq API, so an in-package test would be an import cycle.
package cfpq_test

import (
	"context"
	"fmt"
	"testing"

	"cfpq"
	"cfpq/internal/bench"
	"cfpq/internal/dataset"
)

// benchTable runs every (graph, implementation) cell of one paper table.
// The paper omits the dense implementation on g1–g3; so do we.
func benchTable(b *testing.B, query int) {
	impls := bench.Implementations(query)
	for _, d := range dataset.Graphs() {
		g := d.Build()
		for _, impl := range impls {
			if impl.SkipSynthetic && d.Synthetic {
				continue
			}
			name := fmt.Sprintf("%s/%s", d.Name, impl.Name)
			b.Run(name, func(b *testing.B) {
				results := 0
				for i := 0; i < b.N; i++ {
					results = impl.Run(g)
				}
				b.ReportMetric(float64(results), "results")
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1: Query 1 (same layer, Figure 10
// grammar) over the 14 dataset graphs × {GLL, dGPU, sCPU, sGPU}.
func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable2 regenerates Table 2: Query 2 (adjacent layers, Figure 11
// grammar) over the same graphs and implementations.
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }

// benchTraceGraph builds a chain graph whose closure takes several passes,
// so the per-pass trace overhead (or its absence) is measurable.
func benchTraceGraph() (*cfpq.Graph, *cfpq.Grammar) {
	n := 256
	g := cfpq.NewGraph(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, "a", v+1)
		g.AddEdge(v+1, "b", v)
	}
	return g, cfpq.MustParseGrammar("S -> a S b | a b")
}

// BenchmarkEvaluateTraceOff is the untraced baseline for the pair below.
// Compare allocs/op against BenchmarkEvaluateTraceOn: the disabled trace
// path must add no allocations to the evaluation.
func BenchmarkEvaluateTraceOff(b *testing.B) {
	g, gram := benchTraceGraph()
	eng := cfpq.NewEngine(cfpq.Sparse)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Output: cfpq.OutputCount}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateTraceOn runs the same evaluation with a per-pass trace
// collecting events, to price the enabled path.
func BenchmarkEvaluateTraceOn(b *testing.B) {
	g, gram := benchTraceGraph()
	events := 0
	eng := cfpq.NewEngine(cfpq.Sparse, cfpq.WithTracer(cfpq.Trace{Pass: func(cfpq.PassEvent) { events++ }}))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Output: cfpq.OutputCount}); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 0 && events == 0 {
		b.Fatal("tracer fired no events")
	}
}
