package cfpq

import (
	"context"
	"reflect"
	"testing"
)

func TestRPQFacade(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	pairs, err := RPQ(context.Background(), g, "a* b")
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{I: 0, J: 3}, {I: 1, J: 3}, {I: 2, J: 3}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	// Backend option is honoured (same result).
	dense, err := RPQ(context.Background(), g, "a* b", WithDenseParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dense, want) {
		t.Errorf("dense pairs = %v, want %v", dense, want)
	}
	if _, err := RPQ(context.Background(), g, "a* ("); err == nil {
		t.Error("bad expression should error")
	}
}

func TestRPQEmptyPathsFacade(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, "a", 1)
	pairs, err := RPQ(context.Background(), g, "a*", WithEmptyPaths())
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{I: 0, J: 0}, {I: 0, J: 1}, {I: 1, J: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestConjunctiveFacade(t *testing.T) {
	cg, err := ParseConjunctive(`
		S -> A B & D C
		A -> a A | a
		B -> b B c | b c
		C -> c C | c
		D -> a D b | a b
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Chain spelling a a b b c c (aⁿbⁿcⁿ with n = 2).
	labels := []string{"a", "a", "b", "b", "c", "c"}
	g := NewGraph(len(labels) + 1)
	for i, l := range labels {
		g.AddEdge(i, l, i+1)
	}
	pairs, err := QueryConjunctive(context.Background(), g, cg, "S")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pairs {
		if p.I == 0 && p.J == len(labels) {
			found = true
		}
	}
	if !found {
		t.Errorf("aabbcc not recognised: %v", pairs)
	}
}

func TestShortestPathFacade(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	cnf, _ := ToCNF(MustParseGrammar("S -> a S b | a b"))
	px := ShortestPath(context.Background(), g, cnf)
	if l, ok := px.Length("S", 0, 2); !ok || l != 2 {
		t.Errorf("Length = %d, %v", l, ok)
	}
}

func TestUpdateFacade(t *testing.T) {
	gram := MustParseGrammar("S -> a b")
	cnf, _ := ToCNF(gram)
	for _, opt := range []Option{WithSparse(), WithDense()} {
		g := NewGraph(3)
		g.AddEdge(0, "a", 1)
		ix, _ := Evaluate(g, cnf, opt)
		if ix.Count("S") != 0 {
			t.Fatal("premature pair")
		}
		g.AddEdge(1, "b", 2)
		Update(context.Background(), ix, Edge{From: 1, Label: "b", To: 2})
		if !ix.Has("S", 0, 2) {
			t.Error("(0,2) missing after Update")
		}
	}
}

func TestReverseGraphFacade(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, "a", 1)
	r := ReverseGraph(g)
	if !r.HasEdge(1, "a", 0) {
		t.Error("edge not reversed")
	}
}
