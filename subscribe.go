package cfpq

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"cfpq/internal/core"
)

// Delta is the per-nonterminal relation of newly derived pairs of one
// index update — what AddEdges exposes on UpdateInfo and what
// subscriptions are fed from. See Prepared.Subscribe.
type Delta = core.Delta

// subscriptionBuffer is the bounded per-subscriber channel capacity. A
// consumer that falls more than this many update batches behind has its
// oldest pending batch dropped and is handed a Resync marker on the next
// delivery (see PairBatch.Resync) — publishing never blocks AddEdges.
const subscriptionBuffer = 64

// subscriptionHistory is how many past update batches the hub retains for
// Last-Event-ID style resume (SubscribeFrom). A resume gap wider than the
// window yields a single Resync marker instead of a replay.
const subscriptionHistory = 64

// PairBatch is one subscription delivery: the newly derived pairs of one
// index update (after restriction filtering), stamped with the update's
// sequence number.
//
// Resync set means continuity was lost before this batch: either the
// consumer was too slow and a previous batch was dropped, or a resume
// (SubscribeFrom) asked for a sequence number outside the retained window.
// The pairs of this batch are still exactly the (filtered) delta of update
// Seq, but earlier pairs may have been missed — re-issue the full Request
// to resynchronise, then continue consuming.
type PairBatch struct {
	// Seq is the 1-based sequence number of the index update that derived
	// these pairs; it increases by one per delta-producing AddEdges.
	Seq uint64 `json:"seq"`
	// Pairs are the newly derived pairs, row-major, restriction-filtered.
	// May be empty on a pure Resync marker.
	Pairs []Pair `json:"pairs"`
	// Resync reports lost continuity; see the type comment.
	Resync bool `json:"resync,omitempty"`
}

// Subscription is a standing pairs Request against a Prepared handle: each
// AddEdges that derives new pairs pushes a PairBatch computed from the
// incremental closure's delta matrices — never by diffing full results.
// Obtain one with Prepared.Subscribe; consume Updates (or Batches); Close
// when done.
type Subscription struct {
	hub     *subHub
	id      int64
	nt      string
	src     map[int]bool // nil = unrestricted
	tgt     map[int]bool
	ch      chan PairBatch
	stop    func() bool // cancels the ctx teardown hook
	dropped atomic.Int64

	// Guarded by hub.mu.
	closed        bool
	pendingResync bool
}

// Updates is the delivery channel. It is closed when the subscription ends
// — Close, ctx cancellation, or the handle shutting down (Prepared.Close);
// a consumer that sees it close without having cancelled should treat the
// handle as gone, re-resolve it and resubscribe.
func (s *Subscription) Updates() <-chan PairBatch { return s.ch }

// Batches adapts the subscription to a single-use iterator: it yields
// until the subscription ends, and breaking out of the loop closes it.
func (s *Subscription) Batches() iter.Seq[PairBatch] {
	return func(yield func(PairBatch) bool) {
		for b := range s.ch {
			if !yield(b) {
				s.Close()
				return
			}
		}
	}
}

// Dropped counts update batches discarded because the consumer's buffer
// was full (each is also surfaced in-band via PairBatch.Resync).
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close ends the subscription and closes Updates. Idempotent; also invoked
// automatically when the Subscribe ctx is cancelled.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	s.closeLocked()
	s.hub.mu.Unlock()
	if s.stop != nil {
		s.stop()
	}
}

// closeLocked tears the subscription down; callers hold hub.mu.
func (s *Subscription) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.hub.subs, s.id)
	close(s.ch)
}

// histEntry is one retained update: its sequence number and the full
// (unfiltered) newly-derived pairs per nonterminal.
type histEntry struct {
	seq   uint64
	pairs map[string][]Pair
}

// subHub fans index-update deltas out to subscribers. One per Prepared,
// created on first use; publish runs under the Prepared's write lock, so
// batch order equals index mutation order.
type subHub struct {
	mu     sync.Mutex
	closed bool
	seq    uint64
	nextID int64
	subs   map[int64]*Subscription
	hist   []histEntry // oldest first, at most subscriptionHistory entries
}

func newSubHub() *subHub {
	return &subHub{subs: make(map[int64]*Subscription)}
}

// publish assigns the next sequence number to a non-empty update delta,
// records it in the resume window, and offers the filtered batch to every
// subscriber. Sends never block: a full buffer drops the batch for that
// subscriber and marks it for an in-band Resync on its next delivery.
func (h *subHub) publish(pairs map[string][]Pair) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	h.hist = append(h.hist, histEntry{seq: h.seq, pairs: pairs})
	if len(h.hist) > subscriptionHistory {
		h.hist = h.hist[1:]
	}
	for _, s := range h.subs {
		s.offerLocked(PairBatch{Seq: h.seq, Pairs: s.filter(pairs)})
	}
}

// offerLocked delivers one batch to a subscriber without blocking; callers
// hold hub.mu. Empty batches are skipped unless a resync is owed.
func (s *Subscription) offerLocked(b PairBatch) {
	if len(b.Pairs) == 0 && !s.pendingResync {
		return
	}
	b.Resync = b.Resync || s.pendingResync
	select {
	case s.ch <- b:
		s.pendingResync = false
	default:
		// Slow consumer: drop, and surface the gap in-band on the next
		// batch that does fit.
		s.dropped.Add(1)
		s.pendingResync = true
	}
}

// filter applies the subscription's restriction to one update's pairs.
func (s *Subscription) filter(pairs map[string][]Pair) []Pair {
	all := pairs[s.nt]
	if s.src == nil && s.tgt == nil {
		return all
	}
	var out []Pair
	for _, p := range all {
		if (s.src == nil || s.src[p.I]) && (s.tgt == nil || s.tgt[p.J]) {
			out = append(out, p)
		}
	}
	return out
}

// closeAll ends every subscription and rejects future ones.
func (h *subHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for _, s := range h.subs {
		s.closeLocked()
	}
}

// subscribe registers a subscriber. With resume set, retained updates with
// seq > afterSeq are pre-queued (restriction-filtered); a gap wider than
// the retained window pre-queues a single Resync marker instead.
func (h *subHub) subscribe(ctx context.Context, nt string, src, tgt map[int]bool, resume bool, afterSeq uint64) (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("cfpq: subscribe on a closed Prepared handle")
	}
	h.nextID++
	s := &Subscription{
		hub: h,
		id:  h.nextID,
		nt:  nt,
		src: src,
		tgt: tgt,
		ch:  make(chan PairBatch, subscriptionBuffer),
	}
	if resume && afterSeq != h.seq {
		if afterSeq > h.seq || len(h.hist) == 0 || h.hist[0].seq > afterSeq+1 {
			// Outside the window (or from another handle generation):
			// nothing trustworthy to replay.
			s.pendingResync = true
			s.offerLocked(PairBatch{Seq: h.seq})
		} else {
			for _, e := range h.hist {
				if e.seq > afterSeq {
					s.offerLocked(PairBatch{Seq: e.seq, Pairs: s.filter(e.pairs)})
				}
			}
		}
	}
	h.subs[s.id] = s
	s.stop = context.AfterFunc(ctx, s.Close)
	return s, nil
}

// hub returns the handle's subscription hub, creating it on first use.
func (p *Prepared) hub() *subHub {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.subs == nil {
		p.subs = newSubHub()
	}
	return p.subs
}

// Subscribe registers a standing Request and returns a Subscription that
// receives the newly derived pairs of every subsequent AddEdges, computed
// from the incremental closure's per-update delta (or, after a cancelled
// patch, from the repair rebuild's synthesized new-minus-old delta) —
// never by diffing full results. Deliveries start strictly after the pairs
// visible to a query issued now; to seed state, run the same Request
// through Do first and then apply batches on top.
//
// The request must ask for pairs (the zero Output), carry no Limit and no
// call-site bindings; Sources/Targets restrict the streamed pairs exactly
// as they would a query. Slow consumers never block writers: each
// subscription buffers a bounded number of batches and a consumer that
// falls behind has batches dropped and learns of the gap in-band
// (PairBatch.Resync — drop-with-resync, not backpressure). The
// subscription ends on Close, on ctx cancellation, and when the handle
// itself is closed (Prepared.Close), all of which close Updates.
func (p *Prepared) Subscribe(ctx context.Context, req Request) (*Subscription, error) {
	return p.subscribe(ctx, req, false, 0)
}

// SubscribeFrom is Subscribe resuming after a previously seen sequence
// number: retained updates with Seq > afterSeq are delivered first
// (restriction-filtered), then the stream continues live. The hub retains
// a bounded window of past updates; asking for a sequence number outside
// it yields a single Resync marker instead of a replay — re-issue the full
// Request, then consume. This is what serves SSE Last-Event-ID reconnects.
func (p *Prepared) SubscribeFrom(ctx context.Context, req Request, afterSeq uint64) (*Subscription, error) {
	return p.subscribe(ctx, req, true, afterSeq)
}

func (p *Prepared) subscribe(ctx context.Context, req Request, resume bool, afterSeq uint64) (*Subscription, error) {
	if err := p.checkSubscribe(req); err != nil {
		return nil, err
	}
	return p.hub().subscribe(ctx, req.Nonterminal, memberSet(req.Sources), memberSet(req.Targets), resume, afterSeq)
}

// checkSubscribe validates a standing request: everything a cached read
// rejects, plus subscription-specific shape (pairs output, no bounds).
func (p *Prepared) checkSubscribe(req Request) error {
	if err := p.checkRequest(req); err != nil {
		return err
	}
	if req.normOutput() != OutputPairs {
		return reqErr("output", "subscriptions stream newly derived pairs; only pairs output is supported")
	}
	if req.Limit != 0 {
		return reqErr("limit", "subscriptions stream every newly derived pair; drop the limit")
	}
	if req.MaxPathLength != 0 {
		return reqErr("max_path_length", "subscriptions stream pairs, not paths")
	}
	if _, ok := p.cnf.Index(req.Nonterminal); !ok {
		return fmt.Errorf("cfpq: unknown non-terminal %q", req.Nonterminal)
	}
	return nil
}

// Close shuts the handle's live-query side down: every subscription ends
// (its Updates channel closes) and future Subscribe calls fail. Queries
// and updates on the handle keep working; Close is for owners — cfpqd's
// registry calls it when a cached entry is invalidated — so subscribers
// reliably learn their handle is gone instead of waiting on a stream
// nothing will ever publish to again. Idempotent.
func (p *Prepared) Close() {
	p.hub().closeAll()
}

// publishLocked fans an update's delta out to subscribers; callers hold
// p.mu (write side). Without subscribers ever having existed there is no
// hub and no materialisation cost; an empty delta publishes nothing (and
// consumes no sequence number).
func (p *Prepared) publishLocked(d *Delta) {
	if p.subs == nil || d == nil || d.Empty() {
		return
	}
	pairs := make(map[string][]Pair)
	for _, nt := range d.Nonterminals() {
		pairs[nt] = d.Pairs(nt)
	}
	p.subs.publish(pairs)
}
