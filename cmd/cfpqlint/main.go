// Command cfpqlint is the repo's multichecker: it runs the custom
// analyzers in internal/lint (lockscope, ctxflow, walorder, metricname,
// tracealloc) over the module's packages and prints findings in the
// compiler's file:line:col format, one per line, exiting non-zero when
// any survive //lint:allow suppression filtering.
//
// Usage:
//
//	go run ./cmd/cfpqlint ./...
//	go run ./cmd/cfpqlint -only lockscope,walorder ./internal/server
//
// See the "Static analysis" section of the README for what each analyzer
// enforces and how to suppress a deliberate exception.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cfpq/internal/lint"
	"cfpq/internal/lint/suite"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cfpqlint [-only analyzer,...] [packages]\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := suite.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfpqlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfpqlint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, fset, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfpqlint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
