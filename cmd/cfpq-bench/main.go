// Command cfpq-bench regenerates the paper's evaluation tables and the
// ablation studies.
//
// Usage:
//
//	cfpq-bench -table 1              # Table 1 (Query 1, all 14 graphs)
//	cfpq-bench -table 2              # Table 2 (Query 2)
//	cfpq-bench -table 1 -max 1000    # only graphs with ≤ 1000 triples
//	cfpq-bench -ablation             # iteration/crossover/scaling ablations
//	cfpq-bench -singlesource         # single-source vs all-pairs scenario
//	cfpq-bench -singlesource -sources 4 -json BENCH_singlesource.json
//	cfpq-bench -warmstart            # cold closure vs store warm start
//	cfpq-bench -warmstart -json BENCH_warmstart.json
//	cfpq-bench -planner              # planner strategies (source/target frontier) vs all-pairs
//	cfpq-bench -planner -json BENCH_planner.json
//	cfpq-bench -livequery            # subscription delta push vs poll-and-diff
//	cfpq-bench -livequery -json BENCH_livequery.json
//	cfpq-bench -scale                # synthetic big-graph topologies, sparse vs dense
//	cfpq-bench -scale -short         # CI smoke tier (2048 nodes, finishes in seconds)
//	cfpq-bench -scale -json BENCH_scale.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cfpq/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1 or 2 (0 = both)")
	repeats := flag.Int("repeats", 3, "timed runs per cell; minimum is reported")
	maxTriples := flag.Int("max", 0, "skip graphs with more paper-triples (0 = no limit)")
	ablation := flag.Bool("ablation", false, "run the ablation studies instead of the tables")
	single := flag.Bool("singlesource", false, "run the single-source vs all-pairs serving scenario")
	warm := flag.Bool("warmstart", false, "run the cold-start vs warm-start (persisted index) scenario")
	planner := flag.Bool("planner", false, "run the planner-strategy (source/target frontier) scenario")
	livequery := flag.Bool("livequery", false, "run the live-query scenario: subscription delta push vs poll-and-diff")
	scale := flag.Bool("scale", false, "run the scale-tier scenario: synthetic topologies, sparse vs dense")
	short := flag.Bool("short", false, "shrink the scale tier to its CI smoke size")
	nodes := flag.Int("nodes", 0, "matrix dimension for the scale scenario (0 = 10000)")
	seed := flag.Int64("seed", 0, "scale-free topology seed for the scale scenario (0 = 1)")
	sourceCount := flag.Int("sources", 1, "restriction nodes per query in the single-source/planner scenarios")
	jsonPath := flag.String("json", "", "also write scenario results as JSON to this file (BENCH_*.json artifact)")
	backend := flag.String("backend", "sparse", "matrix backend for the single-source/warm-start scenarios")
	grammars := flag.String("grammars", "", "comma-separated single-source grammars: query1, query2, ancestors (default \"query1,ancestors\")")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	verbose := flag.Bool("v", false, "print per-cell progress")
	flag.Parse()

	if *ablation {
		bench.RunAblations(os.Stdout)
		return
	}
	if *warm {
		rows, err := bench.RunWarmStart(bench.WarmStartConfig{
			Repeats: *repeats,
			Backend: *backend,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatWarmStart(os.Stdout, rows)
		if *jsonPath != "" {
			writeJSON(*jsonPath, rows)
		}
		return
	}
	if *livequery {
		rows, err := bench.RunLiveQuery(bench.LiveQueryConfig{
			Repeats: *repeats,
			Backend: *backend,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatLiveQuery(os.Stdout, rows)
		if *jsonPath != "" {
			writeJSON(*jsonPath, rows)
		}
		return
	}
	if *scale {
		rows, err := bench.RunScale(bench.ScaleConfig{
			Nodes:   *nodes,
			Seed:    *seed,
			Repeats: *repeats,
			Short:   *short,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatScale(os.Stdout, rows)
		if *jsonPath != "" {
			writeJSON(*jsonPath, rows)
		}
		return
	}
	if *planner {
		var gramNames []string
		if *grammars != "" {
			gramNames = strings.Split(*grammars, ",")
		}
		rows, err := bench.RunPlanner(bench.PlannerConfig{
			Grammars: gramNames,
			Nodes:    *sourceCount,
			Repeats:  *repeats,
			Backend:  *backend,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatPlanner(os.Stdout, rows)
		if *jsonPath != "" {
			writeJSON(*jsonPath, rows)
		}
		return
	}
	if *single {
		var gramNames []string
		if *grammars != "" {
			gramNames = strings.Split(*grammars, ",")
		}
		rows, err := bench.RunSingleSource(bench.SingleSourceConfig{
			Grammars: gramNames,
			Sources:  *sourceCount,
			Repeats:  *repeats,
			Backend:  *backend,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatSingleSource(os.Stdout, rows)
		if *jsonPath != "" {
			writeJSON(*jsonPath, rows)
		}
		return
	}

	tables := []int{1, 2}
	if *table == 1 || *table == 2 {
		tables = []int{*table}
	} else if *table != 0 {
		fmt.Fprintf(os.Stderr, "cfpq-bench: -table must be 1 or 2\n")
		os.Exit(2)
	}
	for _, q := range tables {
		cfg := bench.Config{Query: q, Repeats: *repeats, MaxTriples: *maxTriples}
		if *verbose {
			cfg.Log = os.Stderr
		}
		rows, err := bench.RunTable(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
			os.Exit(1)
		}
		if *csvOut {
			if err := bench.WriteCSV(os.Stdout, rows); err != nil {
				fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		bench.FormatTable(os.Stdout, q, rows)
		fmt.Println()
	}
}

// writeJSON writes a scenario's rows as a BENCH_*.json artifact, exiting
// on failure like the rest of the tool.
func writeJSON(path string, rows any) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
		os.Exit(1)
	}
	if err := bench.WriteBenchJSON(f, rows); err != nil {
		fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cfpq-bench: %v\n", err)
		os.Exit(1)
	}
}
