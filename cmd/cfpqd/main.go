// Command cfpqd serves context-free path queries over HTTP.
//
// It keeps a registry of named graphs and grammars, builds the closure
// index of each (graph, grammar, backend) combination on first use, caches
// it for concurrent readers, and patches cached indexes incrementally when
// edges are added (instead of recomputing the closure from scratch).
//
// # Usage
//
//	cfpqd                        # listen on :8080, in-memory only
//	cfpqd -addr 127.0.0.1:9000
//	cfpqd -graph ontology=wine.nt -grammar q1=samegen.g
//	cfpqd -data-dir /var/lib/cfpqd   # durable: WAL + snapshots + warm start
//	cfpqd -memory-budget 268435456   # answer 413 when a closure needs > 256 MiB of matrices
//	cfpqd -follow http://leader:8080 -data-dir /var/lib/cfpqd-replica
//	                                 # read replica: bootstrap + tail the leader's WAL
//
// The -graph flag preloads name=path pairs (format inferred from the
// extension: .nt → N-Triples, anything else → edge list); -grammar
// preloads grammar files. Both flags repeat.
//
// # Persistent mode
//
// With -data-dir, cfpqd opens (or creates) a durable store there and
// warm-starts from it: graphs, grammars and every previously evaluated
// closure index are restored from disk — indexes come back as live
// cache entries without re-running any closure. From then on every
// mutation is journaled write-ahead (AddEdges batches are fsynced to a
// per-graph WAL before they are applied), so a crash — kill -9 included —
// loses at most the batch being written. POST /v1/snapshot folds WALs and
// built indexes into fresh snapshots on demand; a background compactor
// does the same for any graph whose WAL outgrows its threshold; a clean
// shutdown (SIGINT/SIGTERM) snapshots everything so the next start
// replays nothing.
//
// # Replication
//
// With -follow <leader-url>, cfpqd runs as a read replica: it bootstraps
// every graph and grammar from the leader's snapshot endpoints, then tails
// the leader's WAL with retry/backoff, applying each batch through the
// same write-ahead + incremental delta-patch path a warm start uses —
// never a cold closure. Local writes answer 403; reads are served at a
// measured staleness reported by GET /v1/replication/status and /debug/vars.
// GET /readyz answers 503 while the follower bootstraps, loses its leader,
// or lags more than -max-lag records, so load balancers stop routing to
// stale replicas. POST /v1/promote detaches the follower and opens the
// write gate, turning it into a writable leader. A follower given its own
// -data-dir is durable (it re-journals the leader's frames into its own
// WAL, warm-starts after a restart, and can itself lead further
// followers); without -data-dir it replicates purely in memory.
//
// # Walkthrough
//
// Start the server and load a graph and a grammar:
//
//	cfpqd -addr :8080 -data-dir ./data &
//	curl -X PUT --data-binary @wine.nt 'localhost:8080/v1/graphs/wine?format=ntriples'
//	curl -X PUT --data-binary 'S -> subClassOf_r S subClassOf | subClassOf_r subClassOf' \
//	     localhost:8080/v1/grammars/samegen
//
// Query it (the first query builds and caches the closure index; later
// queries on the same graph/grammar/backend hit the cache):
//
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=count'
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=relation'
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=has&from=n1&to=n2'
//
// Single-source questions restrict the answer to pairs leaving given
// nodes, and batches coalesce many queries against one (graph, grammar)
// pair into one cached-index build with answers fanned out over a worker
// pool:
//
//	curl 'localhost:8080/v1/query?graph=wine&grammar=samegen&nonterminal=S&op=relation&sources=n1,n2'
//	curl -X POST -d '{"graph":"wine","grammar":"samegen","queries":[
//	      {"op":"count","nonterminal":"S"},
//	      {"op":"relation-from","nonterminal":"S","sources":["n1"]}]}' \
//	     localhost:8080/v1/query/batch
//
// Add edges — cached indexes are patched with the incremental delta
// closure, visible in /v1/stats as update products ≪ build products —
// and inspect durability and liveness:
//
//	curl -X POST -d '{"edges":[{"from":"a","label":"subClassOf","to":"b"}]}' \
//	     localhost:8080/v1/graphs/wine/edges
//	curl localhost:8080/v1/stats
//	curl -X POST localhost:8080/v1/snapshot
//	curl localhost:8080/v1/store/stats
//	curl localhost:8080/healthz
//	curl localhost:8080/debug/vars
//
// Live queries: POST /v1/subscribe holds the same JSON request open as a
// Server-Sent Events stream, pushing one "pairs" event per edge batch that
// derives new matching pairs (computed from the update's delta matrices,
// never by re-running the query). Events carry sequence ids for
// Last-Event-ID resume; followers serve the route too, fed by the
// replicated-apply path:
//
//	curl -N -X POST -d '{"graph":"wine","grammar":"samegen","nonterminal":"S"}' \
//	     localhost:8080/v1/subscribe
//
// # Observability
//
// GET /metrics serves Prometheus text format: request-latency histograms
// labeled by (route, strategy, backend, status), WAL fsync / index build /
// warm start latency histograms, replication lag gauges (records, bytes,
// age), subscription buffer depth and drop counters, store sizes, and a
// build_info gauge. GET /healthz and /readyz report build version/revision
// and uptime. Every request is logged one structured line to stderr (slog)
// with an X-Request-ID that is echoed from the client or freshly minted,
// and set on the response either way.
//
//	cfpqd -pprof                     # also mount /debug/pprof/ (off by default)
//	cfpqd -slow-query 250ms          # log any query slower than 250ms, with its
//	                                 # full request and per-pass closure trace
//
// The -slow-query log captures the evaluation's per-pass trace (pass index,
// products, per-nonterminal nnz deltas, frontier saturation, wall time) even
// when the client did not ask for one, so a one-off stall is diagnosable
// after the fact. Query responses carry "stats" (iterations, products,
// duration_ns, peak_bytes) on every path, cached reads included; adding
// "trace": true to a POST /v1/query body returns the per-pass table as
// explain.passes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cfpq/internal/replica"
	"cfpq/internal/server"
	"cfpq/internal/store"
)

// namedFiles collects repeated name=path flags.
type namedFiles []string

func (f *namedFiles) String() string { return strings.Join(*f, ",") }

func (f *namedFiles) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable store directory; empty serves purely in memory")
	compactBytes := flag.Int64("compact-bytes", 0, "WAL size that triggers background compaction (0 = 4 MiB default)")
	memoryBudget := flag.Int64("memory-budget", 0, "per-closure matrix memory budget in bytes; over-budget queries answer 413 (0 = unlimited)")
	follow := flag.String("follow", "", "leader URL to replicate from; this node serves reads only until promoted")
	maxLag := flag.Uint64("max-lag", 0, "follower staleness (records behind the leader) beyond which /readyz answers 503 (0 = any finite lag)")
	followerID := flag.String("follower-id", "", "identity reported to the leader's WAL retention (default hostname-pid)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this threshold with their request and per-pass trace (0 = off)")
	var graphs, grammars namedFiles
	flag.Var(&graphs, "graph", "preload a graph as name=path (repeatable)")
	flag.Var(&grammars, "grammar", "preload a grammar as name=path (repeatable)")
	flag.Parse()
	if *follow != "" && (len(graphs) > 0 || len(grammars) > 0) {
		// Preloads are local writes, and a follower's registry belongs to
		// its leader.
		log.Fatalf("cfpqd: -graph/-grammar preloads cannot be combined with -follow; load data on the leader")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	svc := server.New()
	svc.SetMemoryBudget(*memoryBudget)
	if *slowQuery > 0 {
		svc.SetSlowQueryLog(*slowQuery, logger)
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{CompactBytes: *compactBytes})
		if err != nil {
			log.Fatalf("cfpqd: opening store %s: %v", *dataDir, err)
		}
		warmCtx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = svc.AttachStore(warmCtx, st)
		cancel()
		if err != nil {
			log.Fatalf("cfpqd: warm-starting from %s: %v", *dataDir, err)
		}
		ss := st.Stats()
		log.Printf("cfpqd: warm-started from %s: %d graphs, %d grammars, %d indexes restored (replayed %d WAL records, truncated %d torn bytes)",
			*dataDir, len(ss.Graphs), ss.Grammars, svc.Metrics().WarmStarts, ss.ReplayedRecords, ss.RecoveredBytes)
	}
	for _, spec := range graphs {
		name, path, _ := strings.Cut(spec, "=")
		format := "edgelist"
		if strings.HasSuffix(path, ".nt") || strings.HasSuffix(path, ".ntriples") {
			format = "ntriples"
		}
		if err := loadGraph(svc, name, format, path); err != nil {
			log.Fatalf("cfpqd: loading graph %s: %v", spec, err)
		}
	}
	for _, spec := range grammars {
		name, path, _ := strings.Cut(spec, "=")
		text, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("cfpqd: loading grammar %s: %v", spec, err)
		}
		if err := svc.RegisterGrammar(name, string(text)); err != nil {
			log.Fatalf("cfpqd: grammar %s: %v", spec, err)
		}
	}

	var rep *replica.Replicator
	if *follow != "" {
		id := *followerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		svc.SetReadOnly(true)
		svc.SetReadinessMaxLag(*maxLag)
		rep = replica.New(&replica.Client{Base: *follow, FollowerID: id}, svc, replica.Options{})
		svc.SetReplication(rep)
		go func() {
			if err := rep.Run(context.Background()); err != nil {
				log.Printf("cfpqd: replication stopped: %v", err)
			}
		}()
		log.Printf("cfpqd: following %s as %q (read-only until promoted)", *follow, id)
	}

	log.Printf("cfpqd: listening on %s (%d graphs, %d grammars preloaded)",
		*addr, len(graphs), len(grammars))
	handlerOpts := []server.HandlerOption{server.WithRequestLog(logger)}
	if *pprofOn {
		handlerOpts = append(handlerOpts, server.WithPprof())
		log.Printf("cfpqd: pprof profiling mounted at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.Handler(svc, handlerOpts...),
		// Slow-client protection: the service accepts large uploads, so
		// unbounded header/body stalls must not pin goroutines forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then —
	// in persistent mode — fold every WAL and built index into fresh
	// snapshots so the next start replays nothing, and close the store.
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("cfpqd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("cfpqd: shutdown: %v", err)
		}
		if rep != nil {
			// Ask the stream to stop before the final snapshot. A batch
			// still in flight is journaled write-ahead, so at worst it
			// stays in the WAL for the next warm start.
			rep.Stop()
		}
		if st != nil {
			if err := svc.Snapshot(""); err != nil {
				log.Printf("cfpqd: final snapshot: %v", err)
			}
			if err := st.Close(); err != nil {
				log.Printf("cfpqd: closing store: %v", err)
			}
		}
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-idle
}

func loadGraph(svc *server.Service, name, format, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := svc.LoadGraph(name, format, f)
	if err != nil {
		return err
	}
	log.Printf("cfpqd: graph %q: %d nodes, %d edges, %d labels", name, st.Nodes, st.Edges, st.Labels)
	return nil
}
