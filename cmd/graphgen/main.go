// Command graphgen emits the synthetic evaluation datasets as N-Triples,
// and the scale-tier benchmark topologies as edge lists, for inspection or
// for use with external tools.
//
// Usage:
//
//	graphgen -list                 # list dataset names and sizes
//	graphgen -name wine            # write wine.nt to stdout
//	graphgen -name g1 -o g1.nt     # write to a file
//	graphgen -all -dir data/       # write every dataset into a directory
//	graphgen -synth chain -nodes 10000            # scale-tier topology as an edge list
//	graphgen -synth scale-free -nodes 100000 -degree 3 -seed 7 -o sf.edges
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cfpq/internal/dataset"
	"cfpq/internal/graph"
	"cfpq/internal/graphgen"
)

func main() {
	list := flag.Bool("list", false, "list datasets")
	name := flag.String("name", "", "dataset to emit")
	out := flag.String("o", "", "output file (default stdout)")
	all := flag.Bool("all", false, "emit every dataset")
	dir := flag.String("dir", ".", "output directory for -all")
	synth := flag.String("synth", "", "scale-tier topology to emit: chain, cycle, grid or scale-free")
	nodes := flag.Int("nodes", 10_000, "node count for -synth")
	depth := flag.Int("depth", 0, "derivation depth for the chain/cycle topologies (0 = default)")
	degree := flag.Int("degree", 0, "out-degree for the scale-free topology (0 = 3)")
	seed := flag.Int64("seed", 0, "seed for the scale-free topology (0 = 1)")
	flag.Parse()

	switch {
	case *synth != "":
		g, err := graphgen.Generate(graphgen.Spec{
			Kind:   graphgen.Kind(*synth),
			Nodes:  *nodes,
			Depth:  *depth,
			Degree: *degree,
			Seed:   *seed,
		})
		if err != nil {
			fatal(err)
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g, nil); err != nil {
			fatal(err)
		}
	case *list:
		fmt.Printf("%-30s %9s %7s\n", "name", "#triples", "copies")
		for _, d := range dataset.Graphs() {
			kind := ""
			if d.Synthetic {
				kind = "(repeated)"
			}
			fmt.Printf("%-30s %9d %7s\n", d.Name, d.Triples, kind)
		}
	case *all:
		for _, d := range dataset.Graphs() {
			path := filepath.Join(*dir, d.Name+".nt")
			if err := writeDataset(d, path); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d triples)\n", path, d.Triples)
		}
	case *name != "":
		d, ok := dataset.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q (try -list)", *name))
		}
		if *out == "" {
			if err := graph.WriteNTriples(os.Stdout, d.TripleSet()); err != nil {
				fatal(err)
			}
			return
		}
		if err := writeDataset(d, *out); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeDataset(d dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteNTriples(f, d.TripleSet()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
	os.Exit(1)
}
