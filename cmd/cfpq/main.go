// Command cfpq evaluates a context-free path query on an edge-labelled
// graph.
//
// The graph is an N-Triples file (expanded with inverse `_r` edges, as in
// the paper) and the query is a grammar file in the text format of
// internal/grammar, e.g.
//
//	S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
//
// Usage:
//
//	cfpq -graph wine.nt -query samegen.g -start S                # relational
//	cfpq -graph wine.nt -query samegen.g -start S -semantics single-path
//	cfpq -graph wine.nt -query samegen.g -start S -backend dense-parallel
//	cfpq -graph wine.nt -query samegen.g -start S -count         # count only
//	cfpq -graph wine.nt -query samegen.g -start S -sources n1,n2 # pairs leaving n1/n2
//	cfpq -graph wine.nt -query samegen.g -start S -targets n3    # pairs entering n3
//	cfpq -graph wine.nt -query samegen.g -start S -explain       # print the chosen plan
//	cfpq -graph wine.nt -query samegen.g -start S -trace         # print the per-pass table
//	cfpq -graph wine.nt -query samegen.g -save-index samegen.idx # persist the closure
//	cfpq -graph wine.nt -query samegen.g -load-index samegen.idx # answer without re-running it
//
// Every query flows through the library's planner (cfpq.Request →
// Engine.Do/Prepared.Do), which picks full, source-frontier,
// target-frontier or cached-read evaluation; -explain shows the choice and
// -trace prints one leading comment line per closure pass (phase, products,
// nnz delta, frontier saturation, matrix bytes, wall time).
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"cfpq/internal/cli"
)

func main() {
	cfg, err := cli.ParseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	// Ctrl-C cancels the closure between fixpoint passes instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := cli.Run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cfpq: %v\n", err)
		os.Exit(1)
	}
}
